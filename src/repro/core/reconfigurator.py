"""The GPU Reconfigurator — Algorithm 2 of the paper (Section 4.4).

A platform-level daemon that runs every monitoring interval ``W``:

1. predicts next-window best-effort request count with an EWMA (marker ⓐ)
   and converts it to a memory footprint using the current BE model ⓑ;
2. selects the smallest "small slice set" from ``[[1g, 2g], [3g]]`` that
   can hold the predicted BE memory ⓒ;
3. computes occupancy thresholds ``T_low`` ⓓ / ``T_high`` ⓔ — below
   T_low, consolidating strict+BE on a 3g wins (the 3g's performance
   outweighs the light BE interference); above T_high the (2g, 1g) set
   would thrash — in either corner case the (4g, 3g) geometry is used ⓕ;
4. only reconfigures after the same mismatching decision repeats
   ``wait_limit`` (3) times ⓖ, and never lets more than ~30% of GPUs
   reconfigure at once (the cluster's ReconfigurationGovernor).

Applying a change to a node holds its scheduler, waits for the GPU to
drain (MIG requires idle instances), performs the ~2 s reconfiguration,
then resumes dispatch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cluster.node import NodeState, WorkerNode
from repro.core.ewma import EwmaPredictor
from repro.errors import ConfigurationError
from repro.gpu.device_models import A100_40GB, MigDeviceModel, get_device_model
from repro.gpu.mig import (
    GEOMETRY_4G_3G,
    Geometry,
    SliceKind,
)
from repro.observability.span import Span
from repro.serverless.request import Request
from repro.simulation.processes import PeriodicProcess
from repro.workloads.profile import ModelProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serverless.platform import ServerlessPlatform

#: Algorithm 2 line 6: the candidate small-slice sets, in preference order.
SMALL_SLICE_SETS: tuple[tuple[SliceKind, ...], ...] = (
    (SliceKind.G1, SliceKind.G2),
    (SliceKind.G3,),
)


@dataclass(frozen=True)
class ReconfiguratorConfig:
    """Tuning of the Algorithm 2 daemon."""

    monitor_interval: float = 5.0
    wait_limit: int = 3
    ewma_alpha: float = 0.3
    low_fill_fraction: float = 0.25
    high_fill_fraction: float = 0.95

    def __post_init__(self) -> None:
        if self.monitor_interval <= 0:
            raise ConfigurationError("monitor_interval must be positive")
        if self.wait_limit < 1:
            raise ConfigurationError("wait_limit must be >= 1")
        if not 0.0 <= self.low_fill_fraction < self.high_fill_fraction <= 1.0:
            raise ConfigurationError(
                "need 0 <= low_fill_fraction < high_fill_fraction <= 1"
            )


def slice_set_memory(
    kinds: tuple[SliceKind, ...], device: MigDeviceModel = A100_40GB
) -> float:
    """``sum_max_mem`` of Algorithm 2: total memory of a slice set, GB."""
    return sum(device.profile(k).memory_gb for k in kinds)


def decide_geometry(
    pred_be_requests: float,
    be_model: Optional[ModelProfile],
    config: ReconfiguratorConfig = ReconfiguratorConfig(),
    device: MigDeviceModel = A100_40GB,
) -> Geometry:
    """The pure decision core of Algorithm 2 (lines 5–23).

    Returns the geometry the cluster's GPUs should converge to, given the
    predicted BE request count for the next window and the model those
    requests target.
    """
    if be_model is None or pred_be_requests <= 0:
        # No BE load expected: give strict requests the (4g, 3g) split —
        # the paper's fallback geometry, "the most effective in such
        # scenarios".
        return GEOMETRY_4G_3G
    batches = math.ceil(pred_be_requests / be_model.batch_size)
    pred_be_mem = batches * be_model.memory_gb
    mem_per_request = be_model.memory_gb / be_model.batch_size

    chosen: Optional[tuple[SliceKind, ...]] = None
    for slice_set in SMALL_SLICE_SETS:
        if slice_set_memory(slice_set, device) >= pred_be_mem:
            chosen = slice_set
            break
    if chosen is None:
        return GEOMETRY_4G_3G  # ⓕ "cannot fit all BE requests"
    capacity = slice_set_memory(chosen, device)
    t_low = config.low_fill_fraction * capacity / mem_per_request  # ⓓ
    t_high = config.high_fill_fraction * capacity / mem_per_request  # ⓔ
    if pred_be_requests < t_low or pred_be_requests > t_high:
        return GEOMETRY_4G_3G  # ⓕ corner cases
    return Geometry((*chosen, SliceKind.G4))


class GpuReconfigurator:
    """The live Algorithm 2 daemon driving per-node geometry changes."""

    def __init__(
        self,
        platform: "ServerlessPlatform",
        config: ReconfiguratorConfig | None = None,
    ) -> None:
        self.platform = platform
        self.config = config or ReconfiguratorConfig()
        self.device = get_device_model(platform.config.gpu_device)
        self.predictor = EwmaPredictor(self.config.ewma_alpha)
        self.wait_ctr = 0
        self.target: Optional[Geometry] = None
        self.decisions = 0
        self.reconfigurations_started = 0
        #: Completed geometry changes: (time, node name, geometry). Used
        #: by the Figure 7 demonstration to annotate the latency series.
        self.geometry_log: list[tuple[float, str, Geometry]] = []
        self._window_be_count = 0
        self._current_be_model: Optional[ModelProfile] = None
        self._pending: dict[int, Geometry] = {}
        self.tracer = platform.tracer
        self._ctr_decisions = self.tracer.telemetry.counter("reconfig.decisions")
        self._ctr_started = self.tracer.telemetry.counter("reconfig.started")
        self._spans: dict[int, Span] = {}
        self._process = PeriodicProcess(
            platform.sim,
            self.config.monitor_interval,
            self.on_monitor,
            label="reconfigurator",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the monitoring loop (a no-op on non-MIG parts)."""
        if not self.device.partitionable:
            return
        self._process.start()

    def stop(self) -> None:
        """Disarm the monitoring loop."""
        self._process.stop()

    # ------------------------------------------------------------------
    # Observation (hooked into the request ingest path)
    # ------------------------------------------------------------------
    def observe_request(self, request: Request) -> None:
        """Count BE arrivals and track the BE model currently in rotation."""
        if not request.strict:
            self._window_be_count += 1
            self._current_be_model = request.model

    # ------------------------------------------------------------------
    # Monitoring tick (Algorithm 2 lines 1–3 wrapper)
    # ------------------------------------------------------------------
    def on_monitor(self) -> None:
        """One Monitor_Interval: update prediction, decide, maybe apply."""
        self.predictor.observe(self._window_be_count)
        self._window_be_count = 0
        decision = decide_geometry(
            self.predictor.predict(),
            self._current_be_model,
            self.config,
            self.device,
        )
        self.decisions += 1
        self._ctr_decisions.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "reconfig.decision",
                track="reconfig",
                geometry=str(decision),
                predicted_be=round(self.predictor.predict(), 3),
            )
        if decision != self.target:
            self.target = decision
            self.wait_ctr = 0
        mismatched = [
            node
            for node in self.platform.cluster.active_nodes
            if node.gpu.geometry != decision and node.node_id not in self._pending
        ]
        if not mismatched:
            self.wait_ctr = 0  # line 29–30: geometry already matches
            return
        self.wait_ctr += 1
        if self.wait_ctr >= self.config.wait_limit:  # ⓖ
            self._apply(decision, mismatched)

    # ------------------------------------------------------------------
    # Application machinery
    # ------------------------------------------------------------------
    def _apply(self, geometry: Geometry, nodes: list[WorkerNode]) -> None:
        governor = self.platform.cluster.governor
        for node in nodes:
            if node.state is not NodeState.ACTIVE:
                continue
            if not governor.try_acquire():
                break  # ≤ ~30% of GPUs reconfigure at once
            self._pending[node.node_id] = geometry
            scheduler = self.platform.dispatcher.scheduler_for(node)
            scheduler.hold = True
            self.reconfigurations_started += 1
            self._ctr_started.inc()
            if self.tracer.enabled:
                self._spans[node.node_id] = self.tracer.begin(
                    "reconfig.apply",
                    track="reconfig",
                    node=node.name,
                    geometry=str(geometry),
                )
            self._try_start(node)

    def notify_quiescent(self, node: WorkerNode) -> None:
        """Called by the scheduler when a held node's GPU drains."""
        if node.node_id in self._pending:
            self._try_start(node)

    def node_retired(self, node: WorkerNode) -> None:
        """Drop pending state for a node that got evicted mid-flight."""
        if self._pending.pop(node.node_id, None) is not None:
            self.platform.cluster.governor.release()
            self.tracer.end(self._spans.pop(node.node_id, None), aborted=True)

    def _try_start(self, node: WorkerNode) -> None:
        geometry = self._pending.get(node.node_id)
        if geometry is None:
            return
        if not node.gpu.can_reconfigure():
            return  # still draining; notify_quiescent will retry

        def done(_gpu) -> None:
            if self._pending.pop(node.node_id, None) is None:
                return  # node retired while reconfiguring
            self.geometry_log.append(
                (self.platform.sim.now, node.name, geometry)
            )
            self.tracer.end(self._spans.pop(node.node_id, None))
            self.platform.cluster.governor.release()
            scheduler = self.platform.dispatcher.try_scheduler_for(node)
            if scheduler is not None:
                scheduler.hold = False
                scheduler.dispatch()

        node.gpu.reconfigure(geometry, done)
