"""Command-line interface: run experiments and regenerate paper figures.

Usage::

    python -m repro list-figures
    python -m repro figure fig05 [--full]
    python -m repro run --scheme protean --model resnet50 --trace wiki
    python -m repro compare --model vgg19 --schemes protean infless_llama
    python -m repro trace fig5 --out trace.json
    python -m repro faults fig9 --plan plan.json
    python -m repro audit default
    python -m repro audit fig9 --fault-demo --schemes protean
    python -m repro plan wiki --target 0.99 --jobs 4
    python -m repro plan smoke --json plan.json
    python -m repro tenants noisy-neighbour --json
    python -m repro pipelines chain --json
    python -m repro hyperscale smoke --jobs 2 --json report.json
    python -m repro models
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_comparison, run_scheme
from repro.experiments.schemes import (
    COMPARISON_SCHEMES,
    available_schemes,
    canonical_name,
    scheme_names,
)
from repro.metrics.summary import format_table
from repro.parallel import cpu_jobs, resolve_jobs, using_jobs
from repro.workloads.registry import ALL_MODELS


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for run fan-out "
        "(default: $REPRO_JOBS, else the CPU count; 1 = serial)",
    )


def _cli_jobs(args: argparse.Namespace) -> int:
    """Effective job count for a CLI command (defaults to all cores)."""
    return resolve_jobs(args.jobs, default=cpu_jobs())


def _add_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="resnet50", help="strict model")
    parser.add_argument(
        "--trace", default="wiki", choices=["constant", "wiki", "twitter"]
    )
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--warmup", type=float, default=40.0)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--load", type=float, default=0.85)
    parser.add_argument("--strict-fraction", type=float, default=0.5)
    parser.add_argument("--slo-multiplier", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--procurement",
        default="on_demand_only",
        choices=["on_demand_only", "hybrid", "spot_only"],
    )
    parser.add_argument(
        "--spot-availability",
        default="high",
        choices=["high", "moderate", "low"],
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        strict_model=args.model,
        trace=args.trace,
        duration=args.duration,
        warmup=args.warmup,
        n_nodes=args.nodes,
        offered_load=args.load,
        strict_fraction=args.strict_fraction,
        slo_multiplier=args.slo_multiplier,
        seed=args.seed,
        procurement=args.procurement,
        spot_availability=args.spot_availability,
    )


def _cmd_models(_args: argparse.Namespace) -> int:
    rows = [
        {
            "name": m.name,
            "display": m.display_name,
            "domain": m.domain.value,
            "category": m.category.value,
            "batch": m.batch_size,
            "latency_ms": round(m.solo_latency_7g * 1000, 1),
            "memory_gb": m.memory_gb,
            "fbr": m.fbr,
        }
        for m in ALL_MODELS
    ]
    print(format_table(rows, title="Workload registry (22 models)"))
    return 0


def _cmd_list_figures(_args: argparse.Namespace) -> int:
    from repro.experiments.figures import ALL_FIGURES

    for figure_id, module in sorted(ALL_FIGURES.items()):
        doc = (module.run.__module__ or "").rsplit(".", 1)[-1]
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{figure_id:7s} {doc:26s} {summary}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import ALL_FIGURES

    module = ALL_FIGURES.get(args.figure_id)
    if module is None:
        print(
            f"unknown figure {args.figure_id!r}; "
            f"known: {', '.join(sorted(ALL_FIGURES))}",
            file=sys.stderr,
        )
        return 2
    with using_jobs(_cli_jobs(args)):
        result = module.run(quick=not args.full)
    print(result.table())
    return 0


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    from repro.experiments.suite import run_full_suite

    jobs = _cli_jobs(args)
    entries = run_full_suite(
        quick=not args.full,
        output_dir=args.output,
        only=tuple(args.only) if args.only else None,
        jobs=jobs,
        progress=lambda figure_id: print(f"... {figure_id}", flush=True),
        on_complete=lambda entry: print(
            f"    {entry.figure_id} done in {entry.seconds:.1f}s"
            + (f"  [{entry.error}]" if entry.error else ""),
            flush=True,
        ),
    )
    failures = [e for e in entries if e.error]
    print(
        f"regenerated {len(entries) - len(failures)}/{len(entries)} "
        f"artifacts into {args.output}/"
    )
    for entry in failures:
        print(f"  FAILED {entry.figure_id}: {entry.error}", file=sys.stderr)
    return 1 if failures else 0


#: ``trace`` experiment presets: config overrides recreating each paper
#: experiment's setup (durations applied separately via quick/full).
_TRACE_PRESETS: dict[str, dict] = {
    "default": {},
    "fig5": {"strict_model": "resnet50", "trace": "wiki"},
    "fig7": {"strict_model": "shufflenet_v2", "trace": "wiki"},
    "fig9": {
        "strict_model": "resnet50",
        "procurement": "hybrid",
        "spot_availability": "moderate",
    },
    "fig11": {"strict_model": "mobilenet", "trace": "twitter"},
    "fig13": {"strict_model": "gpt2", "trace": "wiki"},
    "fig15": {"strict_model": "resnet50", "slo_multiplier": 2.0},
}


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability.export import (
        text_summary,
        write_chrome_trace,
        write_span_jsonl,
    )

    experiment = args.experiment.lower().replace("fig0", "fig")
    overrides = _TRACE_PRESETS.get(experiment)
    if overrides is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(sorted(_TRACE_PRESETS))}",
            file=sys.stderr,
        )
        return 2
    duration, warmup = (240.0, 60.0) if args.full else (60.0, 20.0)
    if args.duration is not None:
        duration = args.duration
    if args.warmup is not None:
        warmup = args.warmup
    if args.nodes is not None:
        overrides = {**overrides, "n_nodes": args.nodes}
    config = ExperimentConfig(
        duration=duration,
        warmup=warmup,
        tracing=True,
        seed=args.seed,
        **overrides,
    )
    # Detach before exporting: the exporters run against the same
    # DetachedTrace surface the parallel layer ships between processes.
    result = run_scheme(args.scheme, config).detach()
    write_chrome_trace(result.tracer, args.out)
    print(f"wrote {args.out} (open in https://ui.perfetto.dev)")
    if args.jsonl:
        write_span_jsonl(result.tracer, args.jsonl)
        print(f"wrote {args.jsonl}")
    print(text_summary(result.tracer))
    if args.rollup:
        from repro.observability import format_rollup, rollup_spans

        print()
        print(format_rollup(rollup_spans(result.tracer.spans)))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan, check_recovery, demo_plan
    from repro.observability.export import write_chrome_trace

    experiment = args.experiment.lower().replace("fig0", "fig")
    overrides = _TRACE_PRESETS.get(experiment)
    if overrides is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(sorted(_TRACE_PRESETS))}",
            file=sys.stderr,
        )
        return 2
    duration, warmup = (240.0, 60.0) if args.full else (60.0, 20.0)
    if args.duration is not None:
        duration = args.duration
    if args.warmup is not None:
        warmup = args.warmup
    if args.nodes is not None:
        overrides = {**overrides, "n_nodes": args.nodes}
    plan = (
        FaultPlan.from_json(args.plan) if args.plan else demo_plan(duration)
    )
    config = ExperimentConfig(
        duration=duration,
        warmup=warmup,
        tracing=True,
        seed=args.seed,
        fault_plan=plan,
        **overrides,
    )
    result = run_scheme(args.scheme, config)
    sla = args.sla if args.sla is not None else config.provision_seconds + 0.5
    report = check_recovery(result.tracer.spans, sla_seconds=sla)
    print(format_table([result.summary.row()], title=f"{args.scheme} under faults"))
    for key, value in sorted(result.extras.items()):
        print(f"  {key}: {value}")
    print()
    print(report.describe())
    if args.out:
        write_chrome_trace(result.tracer, args.out)
        print(f"wrote {args.out} (open in https://ui.perfetto.dev)")
    return 0 if report.ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan, demo_plan

    experiment = args.experiment.lower().replace("fig0", "fig")
    overrides = _TRACE_PRESETS.get(experiment)
    if overrides is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"known: {', '.join(sorted(_TRACE_PRESETS))}",
            file=sys.stderr,
        )
        return 2
    duration, warmup = (240.0, 60.0) if args.full else (60.0, 20.0)
    if args.duration is not None:
        duration = args.duration
    if args.warmup is not None:
        warmup = args.warmup
    if args.nodes is not None:
        overrides = {**overrides, "n_nodes": args.nodes}
    plan = None
    if args.plan:
        plan = FaultPlan.from_json(args.plan)
    elif args.fault_demo:
        plan = demo_plan(duration)
    try:
        schemes = [
            canonical_name(name)
            for name in (args.schemes or available_schemes())
        ]
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    config = ExperimentConfig(
        duration=duration,
        warmup=warmup,
        seed=args.seed,
        audit=True,
        fault_plan=plan,
        **overrides,
    )
    results = run_comparison(schemes, config, jobs=_cli_jobs(args))
    rows = []
    violations = 0
    for name in schemes:
        report = results[name].audit
        rows.append(
            {
                "scheme": name,
                "ok": "yes" if report.ok else "NO",
                "violations": len(report.violations),
                "admitted": report.admitted,
                "completed": report.completed,
                "residual": report.residual,
                "sweeps": report.sweeps,
            }
        )
        violations += len(report.violations)
    plan_note = " under fault plan" if plan else ""
    print(format_table(rows, title=f"conservation audit ({experiment}{plan_note})"))
    for name in schemes:
        report = results[name].audit
        if not report.ok:
            print(f"\n{name}:")
            print(report.describe())
    if violations:
        print(f"\nAUDIT FAILED: {violations} violation(s)")
        return 1
    print("\naudit passed: zero violations across "
          f"{len(schemes)} scheme(s)")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    from pathlib import Path

    from repro.capacity import (
        DEFAULT_MARGIN,
        GRID_PRESETS,
        PLAN_PRESETS,
        CandidateGrid,
        plan,
        resolve_workload,
    )

    # Workload: a preset name, or a path to a WorkloadSpec JSON file.
    try:
        if args.workload.lower().strip() in PLAN_PRESETS:
            workload = resolve_workload(args.workload)
        elif Path(args.workload).is_file():
            workload = resolve_workload(
                json.loads(Path(args.workload).read_text())
            )
        else:
            print(
                f"unknown workload {args.workload!r}: not a preset "
                f"({', '.join(sorted(PLAN_PRESETS))}) or a JSON file",
                file=sys.stderr,
            )
            return 2
        if args.seed is not None:
            workload = dataclasses.replace(workload, seed=args.seed)

        # Grid: a JSON file, or inline dimension flags on the default.
        inline = {
            key: tuple(value)
            for key, value in (
                ("n_nodes", args.nodes),
                ("procurement", args.procurement),
                ("schemes", args.schemes),
            )
            if value
        }
        if args.grid is not None:
            if inline:
                print(
                    "--grid is exclusive with --nodes/--procurement/--schemes",
                    file=sys.stderr,
                )
                return 2
            if args.grid.lower().strip() in GRID_PRESETS:
                grid = GRID_PRESETS[args.grid.lower().strip()]
            elif Path(args.grid).is_file():
                grid = CandidateGrid.from_dict(
                    json.loads(Path(args.grid).read_text())
                )
            else:
                print(
                    f"unknown grid {args.grid!r}: not a preset "
                    f"({', '.join(sorted(GRID_PRESETS))}) or a JSON file",
                    file=sys.stderr,
                )
                return 2
        else:
            grid = CandidateGrid(**inline)

        report = plan(
            workload,
            grid=grid,
            target=args.target,
            margin=args.margin if args.margin is not None else DEFAULT_MARGIN,
            jobs=_cli_jobs(args),
            exhaustive=args.exhaustive,
            progress=lambda key, seconds: print(
                f"... {key} ({seconds:.1f}s)", flush=True
            ),
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.describe())
    stats = report.cache_stats
    if stats.get("hits", 0) or stats.get("misses", 0):
        print(
            f"\nsimulation cache: {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es), {stats['entries']} entrie(s) "
            f"(hit rate {stats['hit_rate'] * 100:.1f}%)"
        )
    for group, solution in report.extra.get("solver", {}).items():
        if solution is None:
            print(
                f"solver [{group}]: no fleet within the lattice clears "
                "the target conservatively"
            )
        else:
            print(
                f"solver [{group}]: proposes {solution['fleet_key']} at "
                f"${solution['est_hourly_cost']:.2f}/h "
                f"({solution['explored']} fleets explored)"
            )
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"\nwrote {args.json}")
    return 0 if report.recommended is not None else 1


def _cmd_tenants(args: argparse.Namespace) -> int:
    import json

    from repro.tenancy.scenarios import run_tenancy_scenario

    try:
        scheme = canonical_name(args.scheme)
        result = run_tenancy_scenario(
            args.scenario,
            scheme=scheme,
            seed=args.seed,
            jobs=_cli_jobs(args),
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json is not None:
        payload = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
    else:
        print(result.describe())
    return 0


def _cmd_pipelines(args: argparse.Namespace) -> int:
    import json

    from repro.pipelines.scenarios import run_pipeline_scenario

    try:
        scheme = canonical_name(args.scheme)
        result = run_pipeline_scenario(
            args.scenario,
            scheme=scheme,
            seed=args.seed,
            jobs=_cli_jobs(args),
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json is not None:
        payload = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
    else:
        print(result.describe())
    return 0


def _cmd_hyperscale(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.errors import HyperscaleError
    from repro.hyperscale import HyperscaleConfig, run_hyperscale

    overrides = {}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.rate is not None:
        overrides["rate"] = args.rate
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.epoch_ticks is not None:
        overrides["epoch_ticks"] = args.epoch_ticks
    if args.no_audit:
        overrides["audit"] = False
    overrides["seed"] = args.seed
    preset = HyperscaleConfig.smoke if args.preset == "smoke" else HyperscaleConfig.full
    try:
        config = preset(**overrides)
        jobs = resolve_jobs(args.jobs, default=1)
        started = time.perf_counter()
        report = run_hyperscale(config, jobs=jobs)
    except (ConfigurationError, HyperscaleError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    row = {
        "nodes": report.n_nodes,
        "ticks": report.node_ticks,
        "arrivals": report.total_arrivals,
        "served": report.total_served,
        "slo": round(report.slo_attainment, 4),
        "p50_s": round(report.latency_p50, 3),
        "p99_s": round(report.latency_p99, 3),
        "backlog": report.final_backlog,
    }
    print(format_table([row], title=f"hyperscale {args.preset} (jobs={jobs})"))
    print(f"  identity_digest: {report.identity_digest}")
    # Wall time goes to stdout only — the JSON stays deterministic so CI
    # can diff serial and sharded runs byte for byte.
    print(
        f"  wall: {elapsed:.1f}s "
        f"({report.total_arrivals / max(elapsed, 1e-9):,.0f} arrivals/s)"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {args.json}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = run_scheme(args.scheme, config)
    print(format_table([result.summary.row()], title=f"{args.scheme}"))
    for key, value in sorted(result.extras.items()):
        print(f"  {key}: {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    results = run_comparison(args.schemes, config, jobs=_cli_jobs(args))
    rows = [results[name].summary.row() for name in args.schemes]
    print(format_table(rows, title=f"{args.model} on {args.trace} trace"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serving stack pulls in asyncio wiring that no
    # other subcommand needs.
    import json as _json

    from repro.serving import replay, serve, serve_preset

    try:
        config = serve_preset(args.replay if args.replay else args.experiment)
        overrides: dict = {"speedup": args.speedup}
        if args.scheme:
            overrides["scheme"] = args.scheme
        if args.port is not None:
            overrides["port"] = args.port
        if args.host:
            overrides["host"] = args.host
        if args.executor:
            overrides["executor"] = args.executor
        config = config.with_overrides(**overrides)
        if args.seed is not None:
            config = config.with_overrides(
                experiment=config.experiment.with_overrides(seed=args.seed)
            )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.replay:
        attempts = max(1, args.retries)
        for attempt in range(1, attempts + 1):
            report = replay(config=config)
            if report.agrees or attempt == attempts:
                break
            # Live runs share the host with everything else; one noisy
            # attempt is not a verdict, so burn a retry before failing.
            print(f"attempt {attempt}/{attempts} disagreed; retrying")
        if args.json:
            with open(args.json, "w") as handle:
                _json.dump(report.to_dict(), handle, indent=2)
            print(f"wrote {args.json}")
        print("\n".join(report.summary_lines()))
        return 0 if report.agrees else 1
    print(
        f"serving {args.experiment!r} (scheme={config.scheme}) on "
        f"http://{config.host}:{config.port} — GET /healthz, GET /metrics, "
        "POST /v1/requests; Ctrl-C to stop"
    )
    serve(config=config)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="PROTEAN reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the 22 workload profiles").set_defaults(
        func=_cmd_models
    )
    sub.add_parser(
        "list-figures", help="list reproducible paper figures/tables"
    ).set_defaults(func=_cmd_list_figures)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("figure_id", help="e.g. fig05, tab04")
    figure.add_argument(
        "--full", action="store_true", help="paper-breadth (slow) mode"
    )
    _add_jobs_arg(figure)
    figure.set_defaults(func=_cmd_figure)

    everything = sub.add_parser(
        "reproduce-all", help="regenerate every paper table and figure"
    )
    everything.add_argument("--full", action="store_true")
    everything.add_argument("--output", default="results")
    everything.add_argument(
        "--only", nargs="*", default=None, help="restrict to these figure ids"
    )
    _add_jobs_arg(everything)
    everything.set_defaults(func=_cmd_reproduce_all)

    from repro.tenancy.scenarios import SCENARIOS

    tenants = sub.add_parser(
        "tenants",
        help="run a multi-tenant scenario (noisy-neighbour, flash-crowd, "
        "quota-exhaustion)",
    )
    tenants.add_argument("scenario", choices=list(SCENARIOS))
    tenants.add_argument(
        "--scheme", default="protean", choices=sorted(scheme_names())
    )
    tenants.add_argument("--seed", type=int, default=0)
    tenants.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit JSON (to PATH, or stdout when no path given)",
    )
    _add_jobs_arg(tenants)
    tenants.set_defaults(func=_cmd_tenants)

    from repro.pipelines.scenarios import SCENARIOS as PIPELINE_SCENARIOS

    pipelines = sub.add_parser(
        "pipelines",
        help="run a multi-stage workflow scenario (chain, ensemble, "
        "branchy), comparing naive vs pipeline-aware deadline splitting",
    )
    pipelines.add_argument("scenario", choices=list(PIPELINE_SCENARIOS))
    pipelines.add_argument(
        "--scheme", default="protean", choices=sorted(scheme_names())
    )
    pipelines.add_argument("--seed", type=int, default=0)
    pipelines.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit JSON (to PATH, or stdout when no path given)",
    )
    _add_jobs_arg(pipelines)
    pipelines.set_defaults(func=_cmd_pipelines)

    hyper = sub.add_parser(
        "hyperscale",
        help="run the vectorised hyperscale engine (1000-node/100k-rps "
        "scale); report is bit-identical for any --jobs value",
    )
    hyper.add_argument(
        "preset",
        nargs="?",
        default="smoke",
        choices=["smoke", "full"],
        help="smoke: 32 nodes / 10 min (CI); full: 1000 nodes / 24 h",
    )
    hyper.add_argument("--nodes", type=int, default=None)
    hyper.add_argument("--rate", type=float, default=None, help="cluster rps")
    hyper.add_argument(
        "--duration", type=float, default=None, help="simulated seconds"
    )
    hyper.add_argument(
        "--epoch-ticks",
        type=int,
        default=None,
        help="ticks per epoch (the shard barrier interval)",
    )
    hyper.add_argument("--seed", type=int, default=0)
    hyper.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the exact integer conservation checks",
    )
    hyper.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the deterministic report JSON here (no wall time; "
        "serial and sharded runs produce identical files)",
    )
    _add_jobs_arg(hyper)
    hyper.set_defaults(func=_cmd_hyperscale)

    run = sub.add_parser("run", help="run one scheme on one workload")
    run.add_argument(
        "--scheme", default="protean", choices=sorted(scheme_names())
    )
    _add_experiment_args(run)
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare", help="run several schemes")
    compare.add_argument(
        "--schemes", nargs="+", default=list(COMPARISON_SCHEMES)
    )
    _add_jobs_arg(compare)
    _add_experiment_args(compare)
    compare.set_defaults(func=_cmd_compare)

    trace = sub.add_parser(
        "trace", help="run a traced experiment and export a Perfetto trace"
    )
    trace.add_argument(
        "experiment",
        help=f"preset: {', '.join(sorted(_TRACE_PRESETS))} (fig05 == fig5)",
    )
    trace.add_argument("--out", default="trace.json", help="Chrome trace path")
    trace.add_argument(
        "--jsonl", default=None, help="also write a JSONL span log here"
    )
    trace.add_argument(
        "--scheme", default="protean", choices=sorted(scheme_names())
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--full", action="store_true", help="paper-breadth (slow) mode"
    )
    trace.add_argument("--duration", type=float, default=None)
    trace.add_argument("--warmup", type=float, default=None)
    trace.add_argument("--nodes", type=int, default=None)
    trace.add_argument(
        "--rollup",
        action="store_true",
        help="print a flamegraph-style per-track/name self-time rollup",
    )
    trace.set_defaults(func=_cmd_trace)

    faults = sub.add_parser(
        "faults",
        help="run an experiment under an injected fault plan and check "
        "that every capacity loss recovers within the provisioning SLA",
    )
    faults.add_argument(
        "experiment",
        help=f"preset: {', '.join(sorted(_TRACE_PRESETS))} (fig05 == fig5)",
    )
    faults.add_argument(
        "--plan",
        default=None,
        help="fault plan JSON path (default: built-in demo plan)",
    )
    faults.add_argument(
        "--scheme", default="protean", choices=sorted(scheme_names())
    )
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--full", action="store_true", help="paper-breadth (slow) mode"
    )
    faults.add_argument("--duration", type=float, default=None)
    faults.add_argument("--warmup", type=float, default=None)
    faults.add_argument("--nodes", type=int, default=None)
    faults.add_argument(
        "--sla",
        type=float,
        default=None,
        help="recovery SLA seconds (default: provision_seconds + 0.5)",
    )
    faults.add_argument(
        "--out", default=None, help="also export a Chrome trace here"
    )
    faults.set_defaults(func=_cmd_faults)

    audit = sub.add_parser(
        "audit",
        help="run the conservation audit (request/memory/geometry/clock/"
        "spot invariants) across schemes; non-zero exit on any violation",
    )
    audit.add_argument(
        "experiment",
        nargs="?",
        default="default",
        help=f"preset: {', '.join(sorted(_TRACE_PRESETS))} (fig05 == fig5)",
    )
    audit.add_argument(
        "--schemes",
        nargs="+",
        default=None,
        help="schemes to audit (default: every registered scheme)",
    )
    audit.add_argument(
        "--plan",
        default=None,
        help="audit under this fault plan JSON",
    )
    audit.add_argument(
        "--fault-demo",
        action="store_true",
        help="audit under the built-in demo fault plan",
    )
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument(
        "--full", action="store_true", help="paper-breadth (slow) mode"
    )
    audit.add_argument("--duration", type=float, default=None)
    audit.add_argument("--warmup", type=float, default=None)
    audit.add_argument("--nodes", type=int, default=None)
    _add_jobs_arg(audit)
    audit.set_defaults(func=_cmd_audit)

    plan = sub.add_parser(
        "plan",
        help="what-if capacity planner: cheapest cluster configuration "
        "meeting an SLO attainment target (analytic pre-screen, then "
        "simulation of the survivors); non-zero exit when nothing "
        "qualifies",
    )
    plan.add_argument(
        "workload",
        help="workload preset (wiki, twitter, constant, smoke) or a "
        "WorkloadSpec JSON file",
    )
    plan.add_argument(
        "--target",
        type=float,
        default=0.99,
        help="strict-SLO attainment goal in (0, 1] (default 0.99)",
    )
    plan.add_argument(
        "--margin",
        type=float,
        default=None,
        help="admissibility margin of the analytic pre-screen "
        "(default 0.2; larger = prune less, safer)",
    )
    plan.add_argument(
        "--grid",
        default=None,
        help="grid preset name (e.g. hetero-smoke) or CandidateGrid "
        "JSON file to search",
    )
    plan.add_argument(
        "--nodes",
        nargs="+",
        type=int,
        default=None,
        help="cluster sizes to search (default 2 4 6 8 12)",
    )
    plan.add_argument(
        "--procurement",
        nargs="+",
        default=None,
        choices=["on_demand_only", "hybrid", "spot_only"],
        help="procurement modes to search (default: all three)",
    )
    plan.add_argument(
        "--schemes",
        nargs="+",
        default=None,
        help="schemes to search (default: protean)",
    )
    plan.add_argument(
        "--seed", type=int, default=None, help="override the workload seed"
    )
    plan.add_argument(
        "--exhaustive",
        action="store_true",
        help="simulate pruned candidates too (audits the pre-screen)",
    )
    plan.add_argument(
        "--json", default=None, help="also write the versioned report here"
    )
    _add_jobs_arg(plan)
    plan.set_defaults(func=_cmd_plan)

    serve = sub.add_parser(
        "serve",
        help="live serving mode: the platform on a wall clock behind an "
        "HTTP gateway, or --replay for a sim-vs-live cross-check",
    )
    serve.add_argument(
        "experiment",
        nargs="?",
        default="smoke",
        help="serve preset name (see repro.serving.SERVE_PRESETS)",
    )
    serve.add_argument(
        "--replay",
        metavar="TRACE",
        help="replay this preset's trace instead of serving HTTP, and "
        "emit the sim-vs-live agreement report (exit 1 on disagreement)",
    )
    serve.add_argument(
        "--speedup",
        type=float,
        default=1.0,
        help="trace seconds per wall second (replay accelerator)",
    )
    serve.add_argument("--port", type=int, default=None, help="gateway port")
    serve.add_argument("--host", default=None, help="gateway bind address")
    serve.add_argument("--scheme", default=None, help="scheme registry name")
    serve.add_argument(
        "--executor", default=None, help="executor registry name"
    )
    serve.add_argument(
        "--seed", type=int, default=None, help="override the preset's seed"
    )
    serve.add_argument(
        "--json", default=None, help="write the replay report JSON here"
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="total replay attempts before a disagreement is final "
        "(smoke-test guard against wall-clock scheduling noise)",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
