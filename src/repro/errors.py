"""Exception hierarchy for the PROTEAN reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this library."""


class SimulationError(ReproError):
    """An invariant of the discrete-event simulation kernel was violated."""


class EventCancelledError(SimulationError):
    """An operation was attempted on an event that was already cancelled."""


class ClockError(SimulationError):
    """An event was scheduled in the past, or time moved backwards."""


class GPUError(ReproError):
    """Base class for GPU-substrate errors."""


class InvalidGeometryError(GPUError):
    """A MIG geometry violates the A100 partitioning constraints."""


class SliceBusyError(GPUError):
    """A MIG reconfiguration was requested while slices still hold work."""


class InsufficientMemoryError(GPUError):
    """A job does not fit in the target slice's memory."""


class ReconfigurationInProgressError(GPUError):
    """The GPU is mid-reconfiguration and cannot accept work."""


class WorkloadError(ReproError):
    """A workload profile is malformed or unknown."""


class UnknownModelError(WorkloadError):
    """A model name was not found in the workload registry."""


class TraceError(ReproError):
    """A trace generator was configured inconsistently."""


class TraceFormatError(TraceError):
    """A persisted trace file (CSV) is malformed or inconsistent."""


class ObservabilityError(ReproError):
    """The tracing/telemetry subsystem was misused (e.g. double-end)."""


class ClusterError(ReproError):
    """Base class for cluster/VM-layer errors."""


class NodeUnavailableError(ClusterError):
    """Work was routed to a node that is evicted or draining."""


class ProcurementError(ClusterError):
    """The procurement layer could not satisfy a VM request."""


class SchedulingError(ReproError):
    """A scheduling policy produced an infeasible decision."""


class FaultError(ReproError):
    """Base class for fault-injection errors."""


class FaultPlanError(FaultError):
    """A fault plan is malformed or references an unknown fault kind."""


class FaultRecoveryError(FaultError):
    """A recovery invariant over the recorded span log was violated."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or platform configuration is invalid.

    Subclasses :class:`ValueError` as well: user-facing misconfiguration
    historically surfaced as ``ValueError`` in a few leaf modules, and the
    dual inheritance lets every such site raise the structured type without
    breaking callers (or tests) that catch the builtin.
    """


class ServingError(ReproError):
    """The live serving runtime hit an invalid state (gateway/replay)."""


class HyperscaleError(ReproError):
    """The hyperscale engine hit an invalid state (shard/merge misuse)."""


class AuditError(ReproError):
    """Base class for runtime-audit errors."""


class AuditViolationError(AuditError):
    """A conservation invariant was violated (fail-fast audit mode)."""
