"""``python -m repro`` — the PROTEAN reproduction CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
