"""Heterogeneous GPU fleets: the planner's hardware axis.

A *fleet* is a mixed cluster ``{gpu_class: count}`` — the Mélange
observation (PAPERS.md) is that the cheapest SLO-compliant deployment is
usually heterogeneous: strict traffic needs fast parts, but best-effort
work is cheapest on small time-slicing GPUs. This module owns everything
shared between the analytic screen, the allocator, and the simulation
decomposition:

- the **class catalogue** (:data:`GPU_CLASSES`): each planner class binds
  a :mod:`repro.gpu.device_models` part to its pricing class and a
  conservative scheduling-efficiency factor;
- **fleet canonicalisation** (:func:`canonical_fleet`, :func:`fleet_key`)
  and the componentwise-subset order (:func:`fleet_subset`) that makes
  domination pruning sound for fleets — a subset fleet always costs
  strictly less, so cost-only comparisons are never needed;
- the **deterministic stream split** (:func:`split_streams`): which
  fraction of the strict and best-effort streams each class serves. The
  conservative bound, the solver's feasibility test, and the per-class
  simulation sub-runs all use this one policy, so the three layers agree
  on what a fleet *means*.

The split policy: classes that can meet the strict SLO at all
(``slo >= strict_latency / speed``) share the strict stream in proportion
to their capacity ``count × speed``; best-effort work goes to whatever
capacity remains (proportional to the post-strict residual, or to raw
capacity when nothing is left over). On a homogeneous fleet every share
is exactly ``1.0`` — the arithmetic below is arranged so the shares are
*bit-exact* ones, keeping single-class bounds identical to the scalar
formulas they generalise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.cluster.pricing import pricing_for_device
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.gpu.device_models import MigDeviceModel, get_device_model


@dataclass(frozen=True)
class GpuClass:
    """One planner-visible GPU class (catalogue + calibration entry)."""

    #: Canonical planner name (also the pricing class and config
    #: ``gpu_device`` value).
    name: str
    #: The simulated part backing this class.
    device: MigDeviceModel
    #: Conservative fraction of the scheme's ideal throughput this class
    #: actually delivers (1.0 for MIG parts; time-slicing parts pay an
    #: interference penalty on top of their speed factor).
    efficiency: float

    @property
    def speed(self) -> float:
        """Sustained throughput relative to a full A100-40GB."""
        return self.device.speed_factor

    @property
    def partitionable(self) -> bool:
        return self.device.partitionable


#: The planner's GPU-class catalogue. Every entry is simulatable (its
#: ``name`` is a valid ``ExperimentConfig.gpu_device``) and priced
#: (``repro.cluster.pricing.GPU_CLASS_HOURLY``). The A100-40GB entry uses
#: efficiency exactly 1.0 so homogeneous plans stay bit-identical to the
#: pre-heterogeneity planner.
GPU_CLASSES: dict[str, GpuClass] = {
    "a100": GpuClass("a100", get_device_model("a100"), efficiency=1.0),
    "a100-80gb": GpuClass(
        "a100-80gb", get_device_model("a100-80gb"), efficiency=1.0
    ),
    "h100": GpuClass("h100", get_device_model("h100"), efficiency=1.0),
    "a10": GpuClass("a10", get_device_model("a10"), efficiency=0.85),
    "t4": GpuClass("t4", get_device_model("t4"), efficiency=0.85),
}

#: A fleet: ``((class_name, count), ...)`` — canonically sorted by class
#: name, every count >= 1.
Fleet = tuple[tuple[str, int], ...]


def gpu_class(name: str) -> GpuClass:
    """Resolve a catalogue entry by canonical name."""
    entry = GPU_CLASSES.get(name.lower().strip())
    if entry is None:
        raise ConfigurationError(
            f"unknown GPU class {name!r}; known: {', '.join(sorted(GPU_CLASSES))}"
        )
    return entry


def canonical_fleet(
    fleet: Mapping[str, int] | Iterable[tuple[str, int]],
) -> Fleet:
    """Normalise a fleet mapping: known classes, positive counts, sorted."""
    if isinstance(fleet, Mapping):
        pairs = fleet.items()
    else:
        pairs = tuple(fleet)
    merged: dict[str, int] = {}
    for name, count in pairs:
        entry = gpu_class(name)
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise ConfigurationError(
                f"fleet count for {name!r} must be a non-negative int, "
                f"got {count!r}"
            )
        merged[entry.name] = merged.get(entry.name, 0) + count
    canonical = tuple(
        (name, count) for name, count in sorted(merged.items()) if count > 0
    )
    if not canonical:
        raise ConfigurationError("a fleet needs at least one GPU")
    return canonical


def fleet_key(fleet: Fleet) -> str:
    """Candidate-key fragment: ``"a100:2+t4:4"``."""
    return "+".join(f"{name}:{count}" for name, count in fleet)


def fleet_nodes(fleet: Fleet) -> int:
    """Total GPU count across classes."""
    return sum(count for _name, count in fleet)


def fleet_subset(smaller: Fleet, larger: Fleet) -> bool:
    """Componentwise ``smaller <= larger`` with ``smaller != larger``.

    This is the order domination pruning uses: a subset fleet provisions
    no more of any class, so its simulated cost is strictly lower — which
    is exactly the property that keeps "staged == exhaustive optimum"
    structural on heterogeneous grids (cost-*estimate* orderings between
    incomparable fleets can flip under simulation; the subset order
    cannot).
    """
    if smaller == larger:
        return False
    larger_counts = dict(larger)
    return all(
        count <= larger_counts.get(name, 0) for name, count in smaller
    )


def strict_capable(entry: GpuClass, strict_latency: float, slo: float) -> bool:
    """Whether a class can meet the strict SLO even on an idle GPU."""
    return slo >= strict_latency / entry.speed


def split_streams(
    fleet: Fleet,
    *,
    strict_latency: float,
    slo: float,
    strict_work_rate: float,
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Per-class shares of the strict and best-effort streams.

    Returns ``(strict_shares, be_shares)`` aligned with ``fleet`` order;
    each tuple sums to 1.0 (or is all zeros for the strict shares when no
    class can meet the SLO). ``strict_work_rate`` is the offered strict
    work in A100-seconds per second (batch rate × solo latency), used to
    compute each class's post-strict residual capacity.
    """
    entries = [gpu_class(name) for name, _count in fleet]
    capable = [
        strict_capable(entry, strict_latency, slo) for entry in entries
    ]
    capacity = [
        count * entry.speed
        for (_name, count), entry in zip(fleet, entries)
    ]
    capable_capacity = 0.0
    for index in range(len(fleet)):
        if capable[index]:
            capable_capacity = capable_capacity + capacity[index]
    total_capacity = 0.0
    for index in range(len(fleet)):
        total_capacity = total_capacity + capacity[index]

    strict_shares = [
        capacity[index] / capable_capacity
        if capable[index] and capable_capacity > 0.0
        else 0.0
        for index in range(len(fleet))
    ]
    residual = [
        max(capacity[index] - strict_shares[index] * strict_work_rate, 0.0)
        for index in range(len(fleet))
    ]
    total_residual = 0.0
    for index in range(len(fleet)):
        total_residual = total_residual + residual[index]
    if total_residual > 0.0:
        be_shares = [
            residual[index] / total_residual for index in range(len(fleet))
        ]
    else:
        be_shares = [
            capacity[index] / total_capacity for index in range(len(fleet))
        ]
    return tuple(strict_shares), tuple(be_shares)


@dataclass(frozen=True)
class StreamStats:
    """Batch-level workload statistics shared by screen, solver, split.

    The simulator executes whole batches (``batched_arrivals``), so the
    queueing unit is a batch; a strict batch's work is the strict model's
    solo 7g latency itself. Work rates are in A100-seconds per second —
    the capacity unit fleets are measured in.
    """

    strict_batch_rate: float
    be_batch_rate: float
    strict_work_rate: float
    be_work_rate: float
    strict_latency: float
    slo: float

    @property
    def batch_rate(self) -> float:
        return self.strict_batch_rate + self.be_batch_rate

    @property
    def mean_batch_work(self) -> float:
        return (self.strict_work_rate + self.be_work_rate) / (
            self.strict_batch_rate + self.be_batch_rate
        )


def stream_stats(config: ExperimentConfig) -> StreamStats:
    """Compute :class:`StreamStats` for one candidate config.

    Depends only on the workload side (models, rate, fractions, SLO) —
    never on ``n_nodes`` or ``gpu_device`` — so one computation serves
    every fleet in a planning grid.
    """
    strict = config.strict_profile()
    rate = config.request_rate()
    strict_batch_rate = rate * config.strict_fraction / strict.batch_size
    strict_work_rate = strict_batch_rate * strict.solo_latency_7g
    be_batch_rate = 0.0
    be_work_rate = 0.0
    if config.strict_fraction < 1.0:
        pool = config.be_profiles()
        be_request_rate = rate * (1.0 - config.strict_fraction)
        be_batch_rate = be_request_rate * float(
            np.mean([1.0 / m.batch_size for m in pool])
        )
        be_work_rate = be_request_rate * float(
            np.mean([m.solo_latency_7g / m.batch_size for m in pool])
        )
    return StreamStats(
        strict_batch_rate=strict_batch_rate,
        be_batch_rate=be_batch_rate,
        strict_work_rate=strict_work_rate,
        be_work_rate=be_work_rate,
        strict_latency=strict.solo_latency_7g,
        slo=config.slo_multiplier * strict.solo_latency_7g,
    )


def per_node_hourly(
    class_name: str, procurement: str, spot_availability: str
) -> float:
    """Steady-state $/hour of one node of ``class_name``.

    Hybrid procurement is priced at the revocation-weighted blend, the
    same convention as :func:`repro.capacity.screen.estimate_hourly_cost`.
    """
    from repro.cluster.spot import AVAILABILITY_LEVELS
    from repro.cluster.pricing import VMTier

    pricing = pricing_for_device(class_name)
    on_demand = pricing.per_gpu_hourly(VMTier.ON_DEMAND)
    spot = pricing.per_gpu_hourly(VMTier.SPOT)
    if procurement == "on_demand_only":
        return on_demand
    if procurement == "spot_only":
        return spot
    p_rev = AVAILABILITY_LEVELS[spot_availability].revocation_probability
    return (1.0 - p_rev) * spot + p_rev * on_demand


def fleet_hourly_cost(
    fleet: Fleet, procurement: str, spot_availability: str
) -> float:
    """Steady-state $/hour of a whole fleet."""
    cost = 0.0
    for name, count in fleet:
        cost = cost + count * per_node_hourly(
            name, procurement, spot_availability
        )
    return cost
