"""What-if capacity planning: cost/SLO optimisation over cluster configs.

The decision layer on top of the reproduction: given a workload
(:class:`WorkloadSpec`) and an SLO attainment goal, :func:`plan` searches
a declarative grid of cluster configurations (:class:`CandidateGrid` —
mixed GPU fleets, spot/on-demand procurement, scheme, extra config
knobs) in two stages: a vectorised analytic pre-screen built on the
:mod:`repro.analysis.queueing` models prunes infeasible and dominated
candidates with a conservative admissibility margin, then the survivors
are validated by full simulation through :mod:`repro.parallel` — mixed
fleets as per-class sub-runs deduplicated by a content-addressed
:class:`SimulationCache`. On heterogeneous grids the Mélange-style
allocator (:func:`solve_fleet`) proposes the cheapest conservatively
feasible fleet per candidate group. The :class:`PlanReport` carries the
cost-vs-attainment Pareto frontier, the recommended configuration, cache
accounting, and per-candidate evidence — including why every pruned
candidate was pruned.

Typical use::

    from repro.capacity import plan

    report = plan("wiki", target=0.99, jobs=4)
    print(report.describe())
    best = report.recommended_outcome.decision.candidate.config

or ``python -m repro plan wiki --target 0.99 --jobs 4`` (add
``--grid hetero-smoke`` for a mixed-fleet search). See
``docs/capacity_planner.md`` and ``docs/hardware.md``.
"""

from repro.capacity.cache import SimulationCache, config_digest
from repro.capacity.fleet import (
    GPU_CLASSES,
    GpuClass,
    canonical_fleet,
    fleet_hourly_cost,
    fleet_key,
    fleet_nodes,
    fleet_subset,
    split_streams,
    stream_stats,
)
from repro.capacity.grid import (
    DEFAULT_NODE_COUNTS,
    GRID_PRESETS,
    PROCUREMENT_MODES,
    Candidate,
    CandidateGrid,
    SubRun,
    sweepable_knobs,
)
from repro.capacity.planner import (
    DEFAULT_TARGET,
    plan,
    resolve_grid,
    resolve_workload,
    simulated_optimum,
)
from repro.capacity.report import (
    PLAN_SCHEMA_VERSION,
    CandidateOutcome,
    PlanReport,
    SimulationEvidence,
    pareto_frontier,
)
from repro.capacity.screen import (
    DEFAULT_MARGIN,
    PRUNE_DOMINATED,
    PRUNE_INFEASIBLE,
    AnalyticBound,
    ScreenDecision,
    analytic_bound,
    analytic_bounds_batch,
    estimate_hourly_cost,
    screen_candidates,
)
from repro.capacity.solver import FleetSolution, solve_fleet, solver_cost_matrix
from repro.capacity.spec import PLAN_PRESETS, WorkloadSpec

__all__ = [
    "AnalyticBound",
    "Candidate",
    "CandidateGrid",
    "CandidateOutcome",
    "DEFAULT_MARGIN",
    "DEFAULT_NODE_COUNTS",
    "DEFAULT_TARGET",
    "FleetSolution",
    "GPU_CLASSES",
    "GRID_PRESETS",
    "GpuClass",
    "PLAN_PRESETS",
    "PLAN_SCHEMA_VERSION",
    "PROCUREMENT_MODES",
    "PRUNE_DOMINATED",
    "PRUNE_INFEASIBLE",
    "PlanReport",
    "ScreenDecision",
    "SimulationCache",
    "SimulationEvidence",
    "SubRun",
    "WorkloadSpec",
    "analytic_bound",
    "analytic_bounds_batch",
    "canonical_fleet",
    "config_digest",
    "estimate_hourly_cost",
    "fleet_hourly_cost",
    "fleet_key",
    "fleet_nodes",
    "fleet_subset",
    "pareto_frontier",
    "plan",
    "resolve_grid",
    "resolve_workload",
    "screen_candidates",
    "simulated_optimum",
    "solve_fleet",
    "solver_cost_matrix",
    "split_streams",
    "stream_stats",
    "sweepable_knobs",
]
