"""What-if capacity planning: cost/SLO optimisation over cluster configs.

The decision layer on top of the reproduction: given a workload
(:class:`WorkloadSpec`) and an SLO attainment goal, :func:`plan` searches
a declarative grid of cluster configurations (:class:`CandidateGrid` —
cluster size, spot/on-demand procurement, scheme, extra config knobs) in
two stages: an analytic pre-screen built on the
:mod:`repro.analysis.queueing` models prunes infeasible and dominated
candidates with a conservative admissibility margin, then the survivors
are validated by full simulation through :mod:`repro.parallel`. The
:class:`PlanReport` carries the cost-vs-attainment Pareto frontier, the
recommended configuration, and per-candidate evidence — including why
every pruned candidate was pruned.

Typical use::

    from repro.capacity import plan

    report = plan("wiki", target=0.99, jobs=4)
    print(report.describe())
    best = report.recommended_outcome.decision.candidate.config

or ``python -m repro plan wiki --target 0.99 --jobs 4``. See
``docs/capacity_planner.md``.
"""

from repro.capacity.grid import (
    DEFAULT_NODE_COUNTS,
    PROCUREMENT_MODES,
    Candidate,
    CandidateGrid,
    sweepable_knobs,
)
from repro.capacity.planner import (
    DEFAULT_TARGET,
    plan,
    resolve_workload,
    simulated_optimum,
)
from repro.capacity.report import (
    PLAN_SCHEMA_VERSION,
    CandidateOutcome,
    PlanReport,
    SimulationEvidence,
    pareto_frontier,
)
from repro.capacity.screen import (
    DEFAULT_MARGIN,
    PRUNE_DOMINATED,
    PRUNE_INFEASIBLE,
    AnalyticBound,
    ScreenDecision,
    analytic_bound,
    estimate_hourly_cost,
    screen_candidates,
)
from repro.capacity.spec import PLAN_PRESETS, WorkloadSpec

__all__ = [
    "AnalyticBound",
    "Candidate",
    "CandidateGrid",
    "CandidateOutcome",
    "DEFAULT_MARGIN",
    "DEFAULT_NODE_COUNTS",
    "DEFAULT_TARGET",
    "PLAN_PRESETS",
    "PLAN_SCHEMA_VERSION",
    "PROCUREMENT_MODES",
    "PRUNE_DOMINATED",
    "PRUNE_INFEASIBLE",
    "PlanReport",
    "ScreenDecision",
    "SimulationEvidence",
    "WorkloadSpec",
    "analytic_bound",
    "estimate_hourly_cost",
    "pareto_frontier",
    "plan",
    "resolve_workload",
    "screen_candidates",
    "simulated_optimum",
    "sweepable_knobs",
]
