"""Planner output: per-candidate evidence, Pareto frontier, recommendation.

A :class:`PlanReport` is the complete answer to one what-if question.
Nothing is silently capped: every candidate in the grid appears exactly
once — admitted candidates with their simulated evidence, pruned ones
with the analytic bound and reason that eliminated them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capacity.grid import CandidateGrid
from repro.capacity.screen import (
    PRUNE_DOMINATED,
    PRUNE_INFEASIBLE,
    ScreenDecision,
)
from repro.capacity.spec import WorkloadSpec
from repro.metrics.summary import format_table

#: Version stamp of :meth:`PlanReport.to_dict`.
PLAN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SimulationEvidence:
    """Measured outcome of one validated candidate."""

    attainment: float
    total_cost: float
    cost_per_1k_requests: float
    requests_served: int
    strict_p99: float
    evictions: int

    def to_dict(self) -> dict:
        return {
            "attainment": round(self.attainment, 6),
            "total_cost": round(self.total_cost, 6),
            "cost_per_1k_requests": round(self.cost_per_1k_requests, 6),
            "requests_served": self.requests_served,
            "strict_p99": round(self.strict_p99, 6),
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate's full evidence trail through both stages."""

    decision: ScreenDecision
    #: ``None`` for pruned candidates (unless the run was exhaustive).
    simulated: SimulationEvidence | None = None

    @property
    def key(self) -> str:
        return self.decision.candidate.key

    def feasible(self, target: float) -> bool:
        """Whether simulation validated the candidate against ``target``."""
        return (
            self.simulated is not None
            and self.simulated.attainment >= target
        )

    def to_dict(self) -> dict:
        payload = self.decision.candidate.describe()
        payload["admitted"] = self.decision.admitted
        payload["prune_reason"] = self.decision.prune_reason
        payload["prune_detail"] = self.decision.detail
        payload["analytic"] = self.decision.bound.to_dict()
        payload["simulated"] = (
            self.simulated.to_dict() if self.simulated is not None else None
        )
        return payload


def pareto_frontier(
    points: list[tuple[str, float, float]]
) -> tuple[str, ...]:
    """Keys of the cost/attainment Pareto frontier.

    ``points`` is ``[(key, cost, attainment), ...]``. A point is on the
    frontier when no other point is at least as good on both axes and
    strictly better on one. Returned sorted by ascending cost (ties by
    descending attainment then key, so the order is deterministic).
    """
    frontier = []
    for key, cost, attainment in points:
        dominated = any(
            (other_cost <= cost and other_att >= attainment)
            and (other_cost < cost or other_att > attainment)
            for other_key, other_cost, other_att in points
            if other_key != key
        )
        if not dominated:
            frontier.append((cost, -attainment, key))
    return tuple(key for _cost, _neg, key in sorted(frontier))


@dataclass(frozen=True)
class PlanReport:
    """The planner's complete, JSON-exportable answer."""

    workload: WorkloadSpec
    grid: CandidateGrid
    target: float
    margin: float
    outcomes: tuple[CandidateOutcome, ...]
    #: Candidate keys on the simulated cost/attainment Pareto frontier.
    frontier: tuple[str, ...]
    #: Key of the cheapest simulated candidate meeting the target, or None.
    recommended: str | None
    #: Whether pruned candidates were simulated anyway (property tests,
    #: benchmarking the screen).
    exhaustive: bool = False
    #: Simulation-cache accounting (hits/misses/entries/hit_rate).
    cache_stats: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def outcome(self, key: str) -> CandidateOutcome:
        for outcome in self.outcomes:
            if outcome.key == key:
                return outcome
        raise KeyError(key)

    @property
    def recommended_outcome(self) -> CandidateOutcome | None:
        return self.outcome(self.recommended) if self.recommended else None

    @property
    def prune_counts(self) -> dict[str, int]:
        counts = {PRUNE_INFEASIBLE: 0, PRUNE_DOMINATED: 0}
        for outcome in self.outcomes:
            reason = outcome.decision.prune_reason
            if reason is not None:
                counts[reason] += 1
        return counts

    @property
    def pruned(self) -> int:
        return sum(self.prune_counts.values())

    @property
    def prune_ratio(self) -> float:
        return self.pruned / len(self.outcomes) if self.outcomes else 0.0

    @property
    def simulated_count(self) -> int:
        return sum(1 for o in self.outcomes if o.simulated is not None)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def frontier_rows(self) -> list[dict]:
        """Table rows for the frontier (recommendation marked)."""
        rows = []
        for key in self.frontier:
            outcome = self.outcome(key)
            evidence = outcome.simulated
            rows.append(
                {
                    "candidate": key,
                    "recommended": "*" if key == self.recommended else "",
                    "attainment_%": round(evidence.attainment * 100, 2),
                    "meets_target": "yes"
                    if outcome.feasible(self.target)
                    else "no",
                    "cost_$": round(evidence.total_cost, 4),
                    "cost_$per_1k": round(evidence.cost_per_1k_requests, 4),
                    "strict_p99_ms": round(evidence.strict_p99 * 1000, 1),
                    "evictions": evidence.evictions,
                }
            )
        return rows

    def describe(self) -> str:
        """Full text rendering: screen summary + frontier + verdict."""
        counts = self.prune_counts
        lines = [
            f"workload: {self.workload.name} "
            f"(model={self.workload.strict_model}, trace={self.workload.trace})",
            f"target: ≥{self.target * 100:.2f}% strict requests in SLO   "
            f"margin: {self.margin}",
            f"grid: {len(self.outcomes)} candidates — "
            f"{counts[PRUNE_INFEASIBLE]} pruned infeasible, "
            f"{counts[PRUNE_DOMINATED]} pruned dominated, "
            f"{self.simulated_count} simulated "
            f"(prune ratio {self.prune_ratio * 100:.0f}%)",
            "",
            format_table(
                self.frontier_rows(),
                title="cost vs attainment Pareto frontier (simulated)",
            ),
        ]
        recommended = self.recommended_outcome
        if recommended is not None:
            evidence = recommended.simulated
            lines.append(
                f"\nrecommended: {recommended.key} — "
                f"{evidence.attainment * 100:.2f}% attainment at "
                f"${evidence.total_cost:.4f} "
                f"(${evidence.cost_per_1k_requests:.4f}/1k requests)"
            )
        else:
            lines.append(
                "\nno candidate met the target under simulation; "
                "widen the grid or relax the target"
            )
        pruned = [
            outcome
            for outcome in self.outcomes
            if outcome.decision.prune_reason is not None
        ]
        if pruned:
            lines.append("\npruned candidates (analytic pre-screen):")
            for outcome in pruned:
                lines.append(
                    f"  {outcome.key}: {outcome.decision.prune_reason} — "
                    f"{outcome.decision.detail}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe, versioned export (the ``--json`` payload)."""
        recommended = self.recommended_outcome
        if recommended is None:
            recommended_payload = None
        else:
            candidate = recommended.decision.candidate
            recommended_payload = {
                "key": recommended.key,
                "scheme": candidate.scheme,
                "fleet": dict(candidate.fleet),
                # Mixed fleets have no single config — consumers rebuild
                # them from the fleet + workload via Candidate.subruns().
                "config": (
                    candidate.config.to_dict()
                    if candidate.homogeneous
                    else None
                ),
                "evidence": recommended.simulated.to_dict(),
            }
        return {
            "version": PLAN_SCHEMA_VERSION,
            "workload": self.workload.to_dict(),
            "grid": self.grid.to_dict(),
            "target": self.target,
            "margin": self.margin,
            "exhaustive": self.exhaustive,
            "candidates": [outcome.to_dict() for outcome in self.outcomes],
            "pruned": self.prune_counts,
            "prune_ratio": round(self.prune_ratio, 4),
            "simulated": self.simulated_count,
            "frontier": list(self.frontier),
            "recommended": recommended_payload,
            "cache": dict(self.cache_stats),
            **({"extra": self.extra} if self.extra else {}),
        }
