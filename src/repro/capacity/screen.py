"""Analytic pre-screen: bound attainment before paying for simulation.

Stage one of the planner. For every candidate the screen computes two
closed-form bounds on strict-SLO attainment from the extended queueing
models in :mod:`repro.analysis.queueing`:

- an **optimistic upper bound** — the cluster behaves as an ideal pool
  of full-speed GPUs serving *only the strict stream* (an ideal
  scheduler gives strict traffic absolute priority, so best-effort load
  cannot lower this bound) with capacity further inflated by the
  admissibility margin and zero queueing variance. If even this bound
  misses the target — the SLO is tighter than a solo batch, or strict
  demand overloads the inflated capacity — the candidate is *infeasible*
  and pruned: no scheduling policy can beat an ideal work-conserving
  pool with extra capacity.
- a **conservative lower bound** — arrivals inflated by a trace burst
  factor, per-node capacity deflated by a scheme-pessimistic efficiency
  and the margin, spot procurement further discounted by the revocation
  probability. When a candidate clears the target *on this bound*, any
  strictly larger cluster with identical knobs is *dominated*: it can
  only cost more, so it cannot be the cheapest SLO-compliant choice.

The margin is the safety knob of the screen: it widens the gap between
the two bounds so the verdicts here rarely need second-guessing. They
are still only *provisional* for domination — stage two re-admits
dominated candidates whose dominator fails validation (see
:func:`repro.capacity.planner.plan`), which is what makes "the true
simulated optimum is never pruned" structural rather than a calibration
hope — property-tested over seeded grids in
``tests/capacity/test_planner_property.py``. Every pruned candidate
carries its reason in the report; nothing is dropped silently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.queueing import mmc, mps_effective_capacity
from repro.capacity.grid import Candidate
from repro.cluster.pricing import DEFAULT_PRICING, ProviderPricing, VMTier
from repro.cluster.spot import AVAILABILITY_LEVELS
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig

#: Default admissibility margin: the optimistic bound assumes capacity
#: (1 + margin)× better than ideal, the conservative bound assumes it
#: (1 + margin)× worse than the pessimistic model.
DEFAULT_MARGIN = 0.2

#: Ratio of effective to peak arrival rate realised by each trace kind
#: (the Twitter generator scales the *peak* to the requested rate, so its
#: mean lands ~35% lower — Section 6.2).
TRACE_MEAN_FACTOR = {"constant": 1.0, "wiki": 1.0, "twitter": 0.65}

#: Burst inflation applied to arrivals in the conservative bound only.
TRACE_BURST_FACTOR = {"constant": 1.0, "wiki": 1.35, "twitter": 1.6}

#: Pessimistic per-node efficiency (fraction of ideal 7g throughput) for
#: the conservative bound, by canonical scheme name. Values deliberately
#: undershoot what the figures measure — the bound must stay a lower
#: bound. Schemes not listed use ``DEFAULT_EFFICIENCY``.
SCHEME_EFFICIENCY: dict[str, float] = {
    "protean": 0.80,
    "protean_be_balanced": 0.80,
    "molecule": 0.75,
    "naive_slicing": 0.55,
    "mig_only": 0.60,
    "gpulet": 0.70,
    "smart_mps_mig": 0.70,
    "mps_mig": 0.60,
}
DEFAULT_EFFICIENCY = 0.6

PRUNE_INFEASIBLE = "infeasible"
PRUNE_DOMINATED = "dominated"


@dataclass(frozen=True)
class AnalyticBound:
    """Closed-form per-candidate quantities from the pre-screen."""

    #: Work-conserving utilisation at nominal (un-margined) capacity.
    utilization: float
    #: Upper bound on strict-SLO attainment (ideal pool + margin).
    attainment_upper: float
    #: Lower bound on strict-SLO attainment (pessimistic model).
    attainment_lower: float
    #: Estimated steady-state spend, $/hour, from Table 3 pricing.
    est_hourly_cost: float

    def to_dict(self) -> dict:
        return {
            "utilization": round(self.utilization, 4),
            "attainment_upper": round(self.attainment_upper, 4),
            "attainment_lower": round(self.attainment_lower, 4),
            "est_hourly_cost": round(self.est_hourly_cost, 4),
        }


@dataclass(frozen=True)
class ScreenDecision:
    """Admit-or-prune verdict for one candidate."""

    candidate: Candidate
    bound: AnalyticBound
    admitted: bool
    #: ``None`` when admitted, else ``"infeasible"`` or ``"dominated"``.
    prune_reason: str | None = None
    #: Human-readable evidence (which bound failed, who dominates).
    detail: str = ""


def _stream_stats(
    config: ExperimentConfig,
) -> tuple[float, float, float, float, float]:
    """Batch-level workload statistics for the two bounds.

    Returns ``(strict_batch_rate, total_batch_rate, mean_batch_work,
    strict_latency, slo)``. The simulator executes whole batches
    (``batched_arrivals``), so the queueing unit is a batch; a strict
    batch's work is ``strict_latency`` itself. The strict-only stream
    feeds the optimistic bound (an ideal scheduler serves strict traffic
    at absolute priority, unaffected by BE load); the total stream —
    mean work the arrival-weighted mix of strict and BE batch latencies
    on a full 7g GPU — feeds the conservative bound.
    """
    strict = config.strict_profile()
    rate = config.request_rate()
    strict_batch_rate = rate * config.strict_fraction / strict.batch_size
    batch_rate = strict_batch_rate
    work_rate = strict_batch_rate * strict.solo_latency_7g
    if config.strict_fraction < 1.0:
        pool = config.be_profiles()
        be_request_rate = rate * (1.0 - config.strict_fraction)
        be_batch_rate = be_request_rate * float(
            np.mean([1.0 / m.batch_size for m in pool])
        )
        batch_rate += be_batch_rate
        work_rate += be_request_rate * float(
            np.mean([m.solo_latency_7g / m.batch_size for m in pool])
        )
    mean_batch_work = work_rate / batch_rate
    slo = config.slo_multiplier * strict.solo_latency_7g
    return (
        strict_batch_rate,
        batch_rate,
        mean_batch_work,
        strict.solo_latency_7g,
        slo,
    )


def _pessimistic_efficiency(candidate: Candidate) -> float:
    """Lower-bound fraction of ideal throughput one node delivers."""
    efficiency = SCHEME_EFFICIENCY.get(candidate.scheme, DEFAULT_EFFICIENCY)
    if candidate.scheme == "infless_llama":
        # MPS-only consolidation saturates at the FBR breakeven (Eq. 1):
        # with a typical packing depth the per-job share of effective
        # capacity caps the node's useful throughput.
        config = candidate.config
        strict = config.strict_profile()
        depth = 3.0
        efficiency = min(
            DEFAULT_EFFICIENCY,
            mps_effective_capacity(strict.fbr, depth) / depth + 0.2,
        )
    return efficiency


def _spot_discount(candidate: Candidate) -> float:
    """Multiplier on the conservative attainment bound for spot risk."""
    p_rev = AVAILABILITY_LEVELS[
        candidate.config.spot_availability
    ].revocation_probability
    if candidate.procurement == "spot_only":
        return 1.0 - p_rev
    if candidate.procurement == "hybrid":
        # Hybrid falls back to on-demand after a notice; only in-flight
        # work on the evicted node is at risk.
        return 1.0 - 0.25 * p_rev
    return 1.0


def estimate_hourly_cost(
    candidate: Candidate, pricing: ProviderPricing = DEFAULT_PRICING
) -> float:
    """Steady-state $/hour of the candidate cluster (Table 3 pricing).

    Hybrid procurement is priced at the revocation-weighted blend: spot
    while available, on-demand fallback while revoked.
    """
    on_demand = pricing.per_gpu_hourly(VMTier.ON_DEMAND)
    spot = pricing.per_gpu_hourly(VMTier.SPOT)
    if candidate.procurement == "on_demand_only":
        per_node = on_demand
    elif candidate.procurement == "spot_only":
        per_node = spot
    else:
        p_rev = AVAILABILITY_LEVELS[
            candidate.config.spot_availability
        ].revocation_probability
        per_node = (1.0 - p_rev) * spot + p_rev * on_demand
    return candidate.n_nodes * per_node


def analytic_bound(candidate: Candidate, *, margin: float = DEFAULT_MARGIN) -> AnalyticBound:
    """Compute both attainment bounds for one candidate."""
    if margin < 0:
        raise ConfigurationError("admissibility margin must be non-negative")
    config = candidate.config
    strict_rate, batch_rate, mean_work, strict_latency, slo = _stream_stats(
        config
    )
    mean_factor = TRACE_MEAN_FACTOR[config.trace]
    effective_strict_rate = strict_rate * mean_factor
    effective_rate = batch_rate * mean_factor
    c = candidate.n_nodes
    utilization = effective_rate * mean_work / c

    # Optimistic: an ideal pool of full-speed GPUs serving only the
    # strict stream (strict-priority scheduling shields it from BE load)
    # with margin extra capacity and zero arrival/service variance — the
    # simulator's constant trace and fixed batch latencies really are
    # near-deterministic, so a stable ideal pool misses nothing. Only
    # genuine impossibilities prune: the SLO is tighter than a solo
    # batch, or strict demand exceeds margin-inflated capacity (then
    # attainment cannot beat the served fraction 1/rho).
    service_opt = strict_latency / (1.0 + margin)
    rho_opt = effective_strict_rate * service_opt / c
    if slo < service_opt:
        attainment_upper = 0.0
    elif rho_opt >= 1.0:
        attainment_upper = min(1.0, 1.0 / rho_opt)
    else:
        attainment_upper = 1.0

    # Conservative: bursty strict + BE arrivals into a
    # pessimistic-efficiency pool.
    efficiency = _pessimistic_efficiency(candidate)
    burst_rate = effective_rate * TRACE_BURST_FACTOR[config.trace]
    service_cons = mean_work * (1.0 + margin) / efficiency
    rho_cons = burst_rate * service_cons / c
    if rho_cons >= 1.0:
        attainment_lower = 0.0
    else:
        prediction = mmc(burst_rate, service_cons, c)
        slack = slo - strict_latency * (1.0 + margin) / efficiency
        if slack <= 0:
            attainment_lower = 0.0
        else:
            attainment_lower = max(
                0.0, 1.0 - prediction.wait_tail(slack)
            ) * _spot_discount(candidate)
    attainment_lower = min(attainment_lower, attainment_upper)

    return AnalyticBound(
        utilization=utilization,
        attainment_upper=attainment_upper,
        attainment_lower=attainment_lower,
        est_hourly_cost=estimate_hourly_cost(candidate),
    )


def screen_candidates(
    candidates: tuple[Candidate, ...] | list[Candidate],
    *,
    target: float,
    margin: float = DEFAULT_MARGIN,
) -> list[ScreenDecision]:
    """Stage-one verdicts for a candidate set, in input order.

    Pruning is two-phase. *Infeasible*: the optimistic bound misses the
    target. *Dominated*: within each (scheme, procurement, knobs) group —
    where cost is strictly monotone in ``n_nodes`` — every candidate
    larger than the smallest one whose conservative bound clears the
    target is pruned; the smaller cluster already meets the SLO under the
    pessimistic model, so paying for more nodes cannot be optimal.
    """
    if not 0.0 < target <= 1.0:
        raise ConfigurationError("attainment target must lie in (0, 1]")
    bounds = {
        candidate.key: analytic_bound(candidate, margin=margin)
        for candidate in candidates
    }

    # Group by everything but n_nodes; domination only applies where the
    # cost ordering is certain.
    groups: dict[tuple, list[Candidate]] = {}
    for candidate in candidates:
        group_key = (candidate.scheme, candidate.procurement, candidate.knobs)
        groups.setdefault(group_key, []).append(candidate)
    dominated: dict[str, str] = {}
    for members in groups.values():
        members = sorted(members, key=lambda c: c.n_nodes)
        dominator: Candidate | None = None
        for candidate in members:
            if dominator is not None:
                dominated[candidate.key] = dominator.key
            elif bounds[candidate.key].attainment_lower >= target:
                dominator = candidate

    decisions = []
    for candidate in candidates:
        bound = bounds[candidate.key]
        if bound.attainment_upper < target:
            decisions.append(
                ScreenDecision(
                    candidate,
                    bound,
                    admitted=False,
                    prune_reason=PRUNE_INFEASIBLE,
                    detail=(
                        f"optimistic attainment bound "
                        f"{bound.attainment_upper:.4f} < target {target:.4f}"
                    ),
                )
            )
        elif candidate.key in dominated:
            decisions.append(
                ScreenDecision(
                    candidate,
                    bound,
                    admitted=False,
                    prune_reason=PRUNE_DOMINATED,
                    detail=(
                        f"{dominated[candidate.key]} already clears the "
                        f"target on the conservative bound at lower cost"
                    ),
                )
            )
        else:
            decisions.append(ScreenDecision(candidate, bound, admitted=True))
    return decisions
