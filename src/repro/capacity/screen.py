"""Analytic pre-screen: bound attainment before paying for simulation.

Stage one of the planner. For every candidate fleet the screen computes
two closed-form bounds on strict-SLO attainment from the extended
queueing models in :mod:`repro.analysis.queueing`:

- an **optimistic upper bound** — the fleet's strict-capable classes
  behave as one ideal pool of A100-equivalent capacity serving *only the
  strict stream* (an ideal scheduler gives strict traffic absolute
  priority, so best-effort load cannot lower this bound) with capacity
  further inflated by the admissibility margin and zero queueing
  variance. If even this bound misses the target — no class meets the
  SLO even idle, or strict demand overloads the inflated pool — the
  candidate is *infeasible* and pruned: no scheduling policy can beat an
  ideal work-conserving pool with extra capacity.
- a **conservative lower bound** — the fleet is split into per-class
  M/M/c queues by the deterministic stream-split policy
  (:func:`repro.capacity.fleet.split_streams`), each with arrivals
  inflated by a trace burst factor and capacity deflated by the
  scheme-pessimistic efficiency, the class's interference penalty, its
  speed factor, and the margin; spot procurement is further discounted
  by the revocation probability. Per-class attainments combine weighted
  by strict share. When a candidate clears the target *on this bound*,
  any componentwise-larger fleet with identical knobs is *dominated*:
  it provisions at least as much of every class, so it costs strictly
  more and cannot be the cheapest SLO-compliant choice.

Both bounds come in two implementations that are **bit-identical** by
construction: a scalar per-candidate path (:func:`analytic_bound`) and a
vectorised path (:func:`analytic_bounds_batch`) that evaluates the whole
candidate set as numpy arrays — workload statistics computed once per
knob combination, Erlang-C via the batched recursion
(:func:`repro.analysis.queueing.erlang_c_batch`), and the final
exponential tails via ``math.exp`` per element so not even libm SIMD
rounding can diverge. On a homogeneous A100 grid both reduce exactly to
the pre-heterogeneity scalar formulas. ``screen_candidates`` feeds either
path's bounds through one shared verdict pass, so "the vectorised screen
prunes exactly what the scalar screen prunes" is structural.

The margin is the safety knob of the screen: it widens the gap between
the two bounds so the verdicts here rarely need second-guessing. They
are still only *provisional* for domination — stage two re-admits
dominated candidates whose dominator fails validation (see
:func:`repro.capacity.planner.plan`), which is what makes "the true
simulated optimum is never pruned" structural rather than a calibration
hope — property-tested over seeded grids in
``tests/capacity/test_planner_property.py``. Every pruned candidate
carries its reason in the report; nothing is dropped silently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.queueing import erlang_c_batch, mmc, mps_effective_capacity
from repro.capacity.fleet import (
    StreamStats,
    fleet_hourly_cost,
    fleet_subset,
    gpu_class,
    split_streams,
    stream_stats,
)
from repro.capacity.grid import Candidate
from repro.cluster.pricing import ProviderPricing, VMTier
from repro.cluster.spot import AVAILABILITY_LEVELS
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.workloads.profile import ModelProfile

#: Default admissibility margin: the optimistic bound assumes capacity
#: (1 + margin)× better than ideal, the conservative bound assumes it
#: (1 + margin)× worse than the pessimistic model.
DEFAULT_MARGIN = 0.2

#: Ratio of effective to peak arrival rate realised by each trace kind
#: (the Twitter generator scales the *peak* to the requested rate, so its
#: mean lands ~35% lower — Section 6.2).
TRACE_MEAN_FACTOR = {"constant": 1.0, "wiki": 1.0, "twitter": 0.65}

#: Burst inflation applied to arrivals in the conservative bound only.
TRACE_BURST_FACTOR = {"constant": 1.0, "wiki": 1.35, "twitter": 1.6}

#: Pessimistic per-node efficiency (fraction of ideal 7g throughput) for
#: the conservative bound, by canonical scheme name. Values deliberately
#: undershoot what the figures measure — the bound must stay a lower
#: bound. Schemes not listed use ``DEFAULT_EFFICIENCY``.
SCHEME_EFFICIENCY: dict[str, float] = {
    "protean": 0.80,
    "protean_be_balanced": 0.80,
    "molecule": 0.75,
    "naive_slicing": 0.55,
    "mig_only": 0.60,
    "gpulet": 0.70,
    "smart_mps_mig": 0.70,
    "mps_mig": 0.60,
}
DEFAULT_EFFICIENCY = 0.6

PRUNE_INFEASIBLE = "infeasible"
PRUNE_DOMINATED = "dominated"


@dataclass(frozen=True)
class AnalyticBound:
    """Closed-form per-candidate quantities from the pre-screen."""

    #: Work-conserving utilisation at nominal (un-margined) capacity.
    utilization: float
    #: Upper bound on strict-SLO attainment (ideal pool + margin).
    attainment_upper: float
    #: Lower bound on strict-SLO attainment (pessimistic model).
    attainment_lower: float
    #: Estimated steady-state spend, $/hour, from Table 3 pricing.
    est_hourly_cost: float

    def to_dict(self) -> dict:
        return {
            "utilization": round(self.utilization, 4),
            "attainment_upper": round(self.attainment_upper, 4),
            "attainment_lower": round(self.attainment_lower, 4),
            "est_hourly_cost": round(self.est_hourly_cost, 4),
        }


@dataclass(frozen=True)
class ScreenDecision:
    """Admit-or-prune verdict for one candidate."""

    candidate: Candidate
    bound: AnalyticBound
    admitted: bool
    #: ``None`` when admitted, else ``"infeasible"`` or ``"dominated"``.
    prune_reason: str | None = None
    #: Human-readable evidence (which bound failed, who dominates).
    detail: str = ""


def _base_config(candidate: Candidate) -> ExperimentConfig:
    """A single-node config carrying the candidate's workload + knobs.

    Stream statistics never depend on ``n_nodes`` or ``gpu_device``, so
    one such config per knob combination serves every fleet in a grid —
    the key saving of the vectorised path.
    """
    return candidate.workload.to_config(
        n_nodes=1,
        procurement=candidate.procurement,
        **dict(candidate.knobs),
    )


def _pessimistic_efficiency(scheme: str, strict: ModelProfile) -> float:
    """Lower-bound fraction of ideal throughput one node delivers."""
    efficiency = SCHEME_EFFICIENCY.get(scheme, DEFAULT_EFFICIENCY)
    if scheme == "infless_llama":
        # MPS-only consolidation saturates at the FBR breakeven (Eq. 1):
        # with a typical packing depth the per-job share of effective
        # capacity caps the node's useful throughput.
        depth = 3.0
        efficiency = min(
            DEFAULT_EFFICIENCY,
            mps_effective_capacity(strict.fbr, depth) / depth + 0.2,
        )
    return efficiency


def _spot_discount(procurement: str, spot_availability: str) -> float:
    """Multiplier on the conservative attainment bound for spot risk."""
    p_rev = AVAILABILITY_LEVELS[spot_availability].revocation_probability
    if procurement == "spot_only":
        return 1.0 - p_rev
    if procurement == "hybrid":
        # Hybrid falls back to on-demand after a notice; only in-flight
        # work on the evicted node is at risk.
        return 1.0 - 0.25 * p_rev
    return 1.0


def estimate_hourly_cost(
    candidate: Candidate, pricing: ProviderPricing | None = None
) -> float:
    """Steady-state $/hour of the candidate fleet.

    By default every GPU class is priced at its own Table-3-derived rate
    (:func:`repro.capacity.fleet.per_node_hourly`); passing ``pricing``
    overrides the rate uniformly across the fleet. Hybrid procurement is
    priced at the revocation-weighted blend: spot while available,
    on-demand fallback while revoked.
    """
    spot_availability = candidate.workload.spot_availability
    if pricing is None:
        return fleet_hourly_cost(
            candidate.fleet, candidate.procurement, spot_availability
        )
    on_demand = pricing.per_gpu_hourly(VMTier.ON_DEMAND)
    spot = pricing.per_gpu_hourly(VMTier.SPOT)
    if candidate.procurement == "on_demand_only":
        per_node = on_demand
    elif candidate.procurement == "spot_only":
        per_node = spot
    else:
        p_rev = AVAILABILITY_LEVELS[spot_availability].revocation_probability
        per_node = (1.0 - p_rev) * spot + p_rev * on_demand
    return candidate.n_nodes * per_node


def _fleet_bound(
    candidate: Candidate,
    stats: StreamStats,
    *,
    margin: float,
    efficiency: float,
    mean_factor: float,
    burst_factor: float,
    spot_availability: str,
) -> AnalyticBound:
    """Scalar bound for one fleet (reference for the vectorised path)."""
    fleet = candidate.fleet
    entries = [gpu_class(name) for name, _count in fleet]
    strict_shares, be_shares = split_streams(
        fleet,
        strict_latency=stats.strict_latency,
        slo=stats.slo,
        strict_work_rate=stats.strict_work_rate,
    )

    total_capacity = 0.0
    for (_name, count), entry in zip(fleet, entries):
        total_capacity = total_capacity + count * entry.speed

    # Optimistic: the strict-capable classes form one ideal pool of
    # A100-equivalent capacity serving only the strict stream with margin
    # extra headroom and zero arrival/service variance — the simulator's
    # constant trace and fixed batch latencies really are
    # near-deterministic, so a stable ideal pool misses nothing. Only
    # genuine impossibilities prune: no class meets the SLO even with the
    # margin, or strict demand exceeds margin-inflated capacity (then
    # attainment cannot beat the served fraction 1/rho).
    eq_capacity = 0.0
    for (_name, count), entry in zip(fleet, entries):
        if stats.slo >= stats.strict_latency / (entry.speed * (1.0 + margin)):
            eq_capacity = eq_capacity + count * entry.speed
    effective_strict_rate = stats.strict_batch_rate * mean_factor
    service_opt = stats.strict_latency / (1.0 + margin)
    if eq_capacity <= 0.0:
        attainment_upper = 0.0
    else:
        rho_opt = effective_strict_rate * service_opt / eq_capacity
        if rho_opt >= 1.0:
            attainment_upper = min(1.0, 1.0 / rho_opt)
        else:
            attainment_upper = 1.0

    # Utilisation and the conservative bound both follow the per-class
    # stream split: each class is its own M/M/c fed by its share of the
    # bursty strict + best-effort streams at pessimistic efficiency.
    utilization_work = 0.0
    attainment = 0.0
    for index, ((_name, count), entry) in enumerate(zip(fleet, entries)):
        s_share = strict_shares[index]
        b_share = be_shares[index]
        lam_raw = (
            s_share * stats.strict_batch_rate
            + b_share * stats.be_batch_rate
        )
        if lam_raw <= 0.0:
            continue
        mean_work = (
            s_share * stats.strict_work_rate + b_share * stats.be_work_rate
        ) / lam_raw
        utilization_work = utilization_work + (lam_raw * mean_factor) * mean_work
        if s_share <= 0.0:
            continue
        denom = efficiency * entry.efficiency * entry.speed
        burst = (lam_raw * mean_factor) * burst_factor
        service = mean_work * (1.0 + margin) / denom
        rho = burst * service / count
        if rho >= 1.0:
            continue
        prediction = mmc(burst, service, count)
        slack = stats.slo - stats.strict_latency * (1.0 + margin) / denom
        if slack <= 0.0:
            continue
        attainment = attainment + s_share * max(
            0.0, 1.0 - prediction.wait_tail(slack)
        )
    utilization = utilization_work / total_capacity
    attainment_lower = attainment * _spot_discount(
        candidate.procurement, spot_availability
    )
    attainment_lower = min(attainment_lower, attainment_upper)

    return AnalyticBound(
        utilization=utilization,
        attainment_upper=attainment_upper,
        attainment_lower=attainment_lower,
        est_hourly_cost=estimate_hourly_cost(candidate),
    )


def analytic_bound(
    candidate: Candidate, *, margin: float = DEFAULT_MARGIN
) -> AnalyticBound:
    """Compute both attainment bounds for one candidate."""
    if margin < 0:
        raise ConfigurationError("admissibility margin must be non-negative")
    config = _base_config(candidate)
    stats = stream_stats(config)
    return _fleet_bound(
        candidate,
        stats,
        margin=margin,
        efficiency=_pessimistic_efficiency(
            candidate.scheme, config.strict_profile()
        ),
        mean_factor=TRACE_MEAN_FACTOR[config.trace],
        burst_factor=TRACE_BURST_FACTOR[config.trace],
        spot_availability=config.spot_availability,
    )


def analytic_bounds_batch(
    candidates: tuple[Candidate, ...] | list[Candidate],
    *,
    margin: float = DEFAULT_MARGIN,
) -> list[AnalyticBound]:
    """Vectorised :func:`analytic_bound` over a whole candidate set.

    Evaluates every candidate simultaneously as numpy arrays — one
    stream-statistics computation per distinct (workload, knobs)
    combination, one batched Erlang recursion per GPU class — instead of
    one config construction and one ``O(servers)`` Python loop per
    candidate. Every arithmetic step mirrors the scalar path's IEEE-754
    operation sequence exactly (accumulations run in the same class
    order, masked lanes contribute literal ``0.0``, exponential tails go
    through ``math.exp``), so the returned bounds are bit-identical to
    ``[analytic_bound(c, margin=margin) for c in candidates]``.
    """
    if margin < 0:
        raise ConfigurationError("admissibility margin must be non-negative")
    candidates = list(candidates)
    if not candidates:
        return []
    n = len(candidates)

    class_names = sorted({name for c in candidates for name, _ in c.fleet})
    entries = [gpu_class(name) for name in class_names]
    index_of = {name: i for i, name in enumerate(class_names)}
    counts = np.zeros((len(class_names), n))
    for j, cand in enumerate(candidates):
        for name, count in cand.fleet:
            counts[index_of[name], j] = count

    strict_rate = np.empty(n)
    be_rate = np.empty(n)
    strict_work = np.empty(n)
    be_work = np.empty(n)
    strict_latency = np.empty(n)
    slo = np.empty(n)
    mean_factor = np.empty(n)
    burst_factor = np.empty(n)
    efficiency = np.empty(n)
    discount = np.empty(n)
    cost_groups: dict[tuple[str, str], list[int]] = {}
    stats_cache: dict[tuple, tuple] = {}
    for j, cand in enumerate(candidates):
        cache_key = (cand.workload, cand.knobs)
        cached = stats_cache.get(cache_key)
        if cached is None:
            config = _base_config(cand)
            cached = (
                stream_stats(config),
                config.strict_profile(),
                config.trace,
                config.spot_availability,
            )
            stats_cache[cache_key] = cached
        stats, strict_profile, trace, availability = cached
        strict_rate[j] = stats.strict_batch_rate
        be_rate[j] = stats.be_batch_rate
        strict_work[j] = stats.strict_work_rate
        be_work[j] = stats.be_work_rate
        strict_latency[j] = stats.strict_latency
        slo[j] = stats.slo
        mean_factor[j] = TRACE_MEAN_FACTOR[trace]
        burst_factor[j] = TRACE_BURST_FACTOR[trace]
        efficiency[j] = _pessimistic_efficiency(cand.scheme, strict_profile)
        discount[j] = _spot_discount(cand.procurement, availability)
        cost_groups.setdefault((cand.procurement, availability), []).append(j)

    speed = np.array([entry.speed for entry in entries])
    class_eff = np.array([entry.efficiency for entry in entries])
    capacity = counts * speed[:, None]

    # Vectorised split_streams: per-class capability is elementwise over
    # (class, candidate); accumulations run class-by-class in sorted
    # order so absent classes add a literal 0.0 — exactly what the
    # scalar split skips.
    capable = slo[None, :] >= strict_latency[None, :] / speed[:, None]
    capable_cap = np.zeros(n)
    total_cap = np.zeros(n)
    for c in range(len(class_names)):
        capable_cap = capable_cap + np.where(capable[c], capacity[c], 0.0)
        total_cap = total_cap + capacity[c]
    with np.errstate(divide="ignore", invalid="ignore"):
        s_shares = np.where(
            capable & (capable_cap[None, :] > 0.0),
            capacity / capable_cap[None, :],
            0.0,
        )
        residual = np.maximum(capacity - s_shares * strict_work[None, :], 0.0)
        total_residual = np.zeros(n)
        for c in range(len(class_names)):
            total_residual = total_residual + residual[c]
        b_shares = np.where(
            total_residual[None, :] > 0.0,
            residual / total_residual[None, :],
            capacity / total_cap[None, :],
        )

    # Optimistic bound.
    capable_opt = slo[None, :] >= strict_latency[None, :] / (
        speed[:, None] * (1.0 + margin)
    )
    eq_cap = np.zeros(n)
    for c in range(len(class_names)):
        eq_cap = eq_cap + np.where(capable_opt[c], capacity[c], 0.0)
    effective_strict = strict_rate * mean_factor
    service_opt = strict_latency / (1.0 + margin)
    with np.errstate(divide="ignore", invalid="ignore"):
        rho_opt = effective_strict * service_opt / eq_cap
        upper = np.where(
            eq_cap <= 0.0,
            0.0,
            np.where(
                rho_opt >= 1.0, np.minimum(1.0, 1.0 / rho_opt), 1.0
            ),
        )

    # Utilisation + conservative bound, class by class.
    with np.errstate(divide="ignore", invalid="ignore"):
        lam_raw = s_shares * strict_rate[None, :] + b_shares * be_rate[None, :]
        mean_work = (
            s_shares * strict_work[None, :] + b_shares * be_work[None, :]
        ) / lam_raw
    utilization_work = np.zeros(n)
    attainment = np.zeros(n)
    for c in range(len(class_names)):
        loaded = lam_raw[c] > 0.0
        utilization_work = utilization_work + np.where(
            loaded, (lam_raw[c] * mean_factor) * mean_work[c], 0.0
        )
        denom = efficiency * class_eff[c] * speed[c]
        burst = (lam_raw[c] * mean_factor) * burst_factor
        with np.errstate(divide="ignore", invalid="ignore"):
            service = mean_work[c] * (1.0 + margin) / denom
            rho = burst * service / counts[c]
            slack = slo - strict_latency * (1.0 + margin) / denom
        ok = loaded & (s_shares[c] > 0.0) & (rho < 1.0) & (slack > 0.0)
        if not np.any(ok):
            continue
        servers = np.where(ok, counts[c], 1.0).astype(np.int64)
        offered = np.where(ok, burst * service, 0.0)
        delay = erlang_c_batch(servers, offered)
        with np.errstate(invalid="ignore"):
            drain = (counts[c] - counts[c] * rho) / service
            arg = np.where(ok, -drain * slack, 0.0)
        # math.exp, not np.exp: libm's SIMD exp can differ in the last
        # ulp, and the scalar path's tails go through math.exp.
        tails = np.array([math.exp(value) for value in arg])
        tail = np.where(delay <= 0.0, 0.0, delay * tails)
        attainment = attainment + np.where(
            ok, s_shares[c] * np.maximum(0.0, 1.0 - tail), 0.0
        )
    utilization = utilization_work / total_cap
    lower = np.minimum(attainment * discount, upper)

    # Estimated cost: per-class rates resolved once per
    # (procurement, availability) group, accumulated in class order.
    from repro.capacity.fleet import per_node_hourly

    cost = np.zeros(n)
    for c, name in enumerate(class_names):
        rate = np.empty(n)
        for (procurement, availability), members in cost_groups.items():
            rate[members] = per_node_hourly(name, procurement, availability)
        cost = cost + counts[c] * rate

    return [
        AnalyticBound(
            utilization=float(utilization[j]),
            attainment_upper=float(upper[j]),
            attainment_lower=float(lower[j]),
            est_hourly_cost=float(cost[j]),
        )
        for j in range(n)
    ]


def screen_candidates(
    candidates: tuple[Candidate, ...] | list[Candidate],
    *,
    target: float,
    margin: float = DEFAULT_MARGIN,
    vectorised: bool = True,
) -> list[ScreenDecision]:
    """Stage-one verdicts for a candidate set, in input order.

    Bounds come from the vectorised batch path by default
    (``vectorised=False`` selects the scalar reference path; both yield
    bit-identical bounds, so the verdicts cannot differ). Pruning is
    two-phase. *Infeasible*: the optimistic bound misses the target.
    *Dominated*: within each (scheme, procurement, knobs) group, a
    candidate is pruned when some componentwise-smaller fleet — no more
    GPUs of any class, hence strictly cheaper — already clears the
    target on its conservative bound; the smaller fleet meets the SLO
    under the pessimistic model, so paying for more nodes cannot be
    optimal. On homogeneous grids this reduces to the classic rule:
    everything larger than the smallest conservatively-feasible cluster
    is dominated.
    """
    if not 0.0 < target <= 1.0:
        raise ConfigurationError("attainment target must lie in (0, 1]")
    candidates = list(candidates)
    if vectorised:
        bound_list = analytic_bounds_batch(candidates, margin=margin)
    else:
        bound_list = [analytic_bound(c, margin=margin) for c in candidates]
    bounds = {
        candidate.key: bound
        for candidate, bound in zip(candidates, bound_list)
    }

    # Group by everything but the fleet; domination only applies where
    # the cost ordering is certain (the componentwise-subset order).
    groups: dict[tuple, list[Candidate]] = {}
    for candidate in candidates:
        group_key = (candidate.scheme, candidate.procurement, candidate.knobs)
        groups.setdefault(group_key, []).append(candidate)
    dominated: dict[str, str] = {}
    for members in groups.values():
        members = sorted(members, key=lambda c: (c.n_nodes, c.key))
        dominators: list[Candidate] = []
        for candidate in members:
            dominator = next(
                (
                    d
                    for d in dominators
                    if fleet_subset(d.fleet, candidate.fleet)
                ),
                None,
            )
            if dominator is not None:
                dominated[candidate.key] = dominator.key
            elif bounds[candidate.key].attainment_lower >= target:
                dominators.append(candidate)

    decisions = []
    for candidate in candidates:
        bound = bounds[candidate.key]
        if bound.attainment_upper < target:
            decisions.append(
                ScreenDecision(
                    candidate,
                    bound,
                    admitted=False,
                    prune_reason=PRUNE_INFEASIBLE,
                    detail=(
                        f"optimistic attainment bound "
                        f"{bound.attainment_upper:.4f} < target {target:.4f}"
                    ),
                )
            )
        elif candidate.key in dominated:
            decisions.append(
                ScreenDecision(
                    candidate,
                    bound,
                    admitted=False,
                    prune_reason=PRUNE_DOMINATED,
                    detail=(
                        f"{dominated[candidate.key]} already clears the "
                        f"target on the conservative bound at lower cost"
                    ),
                )
            )
        else:
            decisions.append(ScreenDecision(candidate, bound, admitted=True))
    return decisions
