"""Workload specification for capacity planning.

A :class:`WorkloadSpec` pins everything about the *demand* side of a
what-if question — trace shape, model mix, request rate, SLO tightness —
while leaving the *supply* side (cluster size, procurement mode, scheme)
to the candidate grid. The crucial difference from a plain
:class:`~repro.experiments.config.ExperimentConfig` is that the request
rate is fixed in absolute terms: ``ExperimentConfig.offered_load`` scales
demand with ``n_nodes`` (useful for figures that compare schemes at equal
pressure), which would make every candidate cluster face a different
workload. The planner's question is the inverse — one workload, many
clusters — so the spec resolves a single rate once and every candidate
config carries it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig


@dataclass(frozen=True)
class WorkloadSpec:
    """The demand side of a capacity-planning question."""

    #: Display name (presets use it; free-form otherwise).
    name: str = "custom"
    strict_model: str = "resnet50"
    trace: str = "wiki"
    strict_fraction: float = 0.5
    slo_multiplier: float = 3.0
    rotation_period: float = 20.0

    #: Explicit request rate (same convention as ``ExperimentConfig.rate``:
    #: unscaled rps, multiplied by ``scale`` at run time). When ``None``,
    #: the rate is derived once from ``offered_load`` at
    #: ``reference_nodes`` and then held fixed across all candidates.
    rate: float | None = None
    offered_load: float = 0.6
    reference_nodes: int = 8

    duration: float = 60.0
    warmup: float = 20.0
    drain: float = 120.0
    scale: float = 0.1
    spot_availability: str = "moderate"
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.strict_fraction <= 1.0:
            raise ConfigurationError(
                "strict_fraction must lie in (0, 1]: SLO attainment is "
                "defined over strict requests, so the planner needs some"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError("rate must be positive")
        if self.rate is None and self.offered_load <= 0:
            raise ConfigurationError("offered_load must be positive")
        if self.reference_nodes < 1:
            raise ConfigurationError("reference_nodes must be >= 1")
        # Delegate the remaining validation (trace names, durations, spot
        # levels, model names) to ExperimentConfig by building one.
        self.to_config(n_nodes=self.reference_nodes)

    def resolved_rate(self) -> float:
        """The one absolute request rate every candidate faces.

        Same unit as ``ExperimentConfig.rate`` (unscaled rps). Derived
        from ``offered_load`` at ``reference_nodes`` when no explicit
        rate was given.
        """
        if self.rate is not None:
            return self.rate
        reference = ExperimentConfig(
            strict_model=self.strict_model,
            trace=self.trace,
            strict_fraction=self.strict_fraction,
            slo_multiplier=self.slo_multiplier,
            rotation_period=self.rotation_period,
            offered_load=self.offered_load,
            n_nodes=self.reference_nodes,
            duration=self.duration,
            warmup=self.warmup,
            drain=self.drain,
            scale=self.scale,
            spot_availability=self.spot_availability,
            seed=self.seed,
        )
        return reference.request_rate() / self.scale

    def to_config(
        self,
        *,
        n_nodes: int,
        procurement: str = "on_demand_only",
        **knobs,
    ) -> ExperimentConfig:
        """The :class:`ExperimentConfig` for one candidate cluster."""
        return ExperimentConfig(
            strict_model=self.strict_model,
            trace=self.trace,
            strict_fraction=self.strict_fraction,
            slo_multiplier=self.slo_multiplier,
            rotation_period=self.rotation_period,
            rate=self.resolved_rate(),
            n_nodes=n_nodes,
            procurement=procurement,
            duration=self.duration,
            warmup=self.warmup,
            drain=self.drain,
            scale=self.scale,
            spot_availability=self.spot_availability,
            seed=self.seed,
            **knobs,
        )

    # ------------------------------------------------------------------
    # Serialisation (workload files for the CLI)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation; round-trips via :meth:`from_dict`."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadSpec":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"workload payload must be a dict, got {type(payload).__name__}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown workload field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**payload)


#: Named workload presets for ``python -m repro plan <workload>``.
PLAN_PRESETS: dict[str, WorkloadSpec] = {
    # The paper's headline setting: ResNet 50 strict traffic on the
    # Wikipedia diurnal trace.
    "wiki": WorkloadSpec(name="wiki", strict_model="resnet50", trace="wiki"),
    # Figure 11's bursty setting: MobileNet on the Twitter trace.
    "twitter": WorkloadSpec(
        name="twitter", strict_model="mobilenet", trace="twitter"
    ),
    # Steady-state sanity check.
    "constant": WorkloadSpec(
        name="constant", strict_model="resnet50", trace="constant"
    ),
    # Tiny deterministic workload for CI smoke runs and tests. The
    # warmup must cover the container cold-start ramp (~15 s) or the
    # measured attainment is capacity-independent cold-start noise.
    "smoke": WorkloadSpec(
        name="smoke",
        strict_model="mobilenet",
        trace="constant",
        offered_load=0.4,
        reference_nodes=2,
        duration=40.0,
        warmup=20.0,
        drain=60.0,
        spot_availability="high",
    ),
    # Mixed-fleet demonstrator for the ``hetero-smoke`` grid: 40% of
    # the traffic is strict (A100-only — the T4 cannot meet the SLO
    # even idle) and the best-effort bulk is cheap to soak on T4s, so a
    # single A100 drowns, a second A100 meets the target at far higher
    # cost, and the cheapest feasible cluster is genuinely
    # heterogeneous. Pinned by the mixed-beats-homogeneous regression
    # test and the CI smoke step.
    "hetero-smoke": WorkloadSpec(
        name="hetero-smoke",
        strict_model="mobilenet",
        trace="constant",
        strict_fraction=0.4,
        offered_load=1.2,
        reference_nodes=2,
        duration=40.0,
        warmup=20.0,
        drain=60.0,
        spot_availability="high",
    ),
}
