"""Declarative candidate grids of cluster configurations.

A :class:`CandidateGrid` names the supply-side dimensions the planner
searches: fleets (homogeneous sizes, or mixed ``{gpu_class: count}``
combinations when ``gpu_classes`` names several classes), procurement
modes, schemes (resolved through the scheme registry), and optional
extra :class:`ExperimentConfig` knobs (reconfigurator/autoscaler settings
such as ``rotation_period`` or ``prewarm_containers``).
:meth:`CandidateGrid.candidates` crosses the dimensions with a
:class:`~repro.capacity.spec.WorkloadSpec` into concrete
:class:`Candidate` entries.

Candidate configs are built *lazily*: a heterogeneous grid can hold tens
of thousands of candidates, and the vectorised screen never needs a full
``ExperimentConfig`` per candidate — only the survivors that reach
simulation pay for config construction (and for mixed fleets, their
per-class :meth:`Candidate.subruns` decomposition).

Unknown dimension or knob names raise
:class:`~repro.errors.ConfigurationError`, consistent with the
``ExperimentConfig.from_dict`` normalisation.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, fields
from functools import cached_property
from typing import Mapping

from repro.capacity.fleet import (
    Fleet,
    canonical_fleet,
    fleet_key,
    fleet_nodes,
    gpu_class,
    split_streams,
    stream_stats,
)
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.schemes import canonical_name
from repro.capacity.spec import WorkloadSpec

#: Default cluster sizes searched when the caller does not narrow them.
DEFAULT_NODE_COUNTS = (2, 4, 6, 8, 12)

#: Procurement modes understood by the runner.
PROCUREMENT_MODES = ("on_demand_only", "hybrid", "spot_only")

#: The default (homogeneous, paper-testbed) GPU class.
DEFAULT_GPU_CLASSES = ("a100",)

#: ExperimentConfig fields the grid/spec own; everything else that is a
#: config field may be swept as a knob.
_RESERVED_FIELDS = frozenset(
    {
        "n_nodes",
        "procurement",
        "strict_model",
        "trace",
        "rate",
        "offered_load",
        "duration",
        "warmup",
        "drain",
        "scale",
        "slo_multiplier",
        "strict_fraction",
        "rotation_period",
        "spot_availability",
        "seed",
        "fault_plan",
        "audit",
        "audit_interval",
        "audit_fail_fast",
        "tracing",
        "telemetry_interval",
        "batched_arrivals",
        # The hardware axis belongs to the fleet dimension, not the knob
        # sweep: a per-knob gpu_device would bypass the per-class pricing
        # and stream-split machinery.
        "gpu_device",
    }
)


def sweepable_knobs() -> tuple[str, ...]:
    """Config fields a grid may sweep (sorted)."""
    return tuple(
        sorted(
            spec.name
            for spec in fields(ExperimentConfig)
            if spec.name not in _RESERVED_FIELDS
        )
    )


@dataclass(frozen=True)
class SubRun:
    """One per-class slice of a mixed-fleet candidate's simulation.

    A mixed fleet is validated as independent homogeneous sub-runs — one
    per GPU class — each carrying its share of the strict and best-effort
    streams (see :func:`repro.capacity.fleet.split_streams`). The
    planner merges their evidence back into one per-candidate verdict.
    """

    gpu_class: str
    count: int
    #: Fraction of the strict request stream routed to this class.
    strict_share: float
    #: Fraction of the best-effort request stream routed to this class.
    be_share: float
    config: ExperimentConfig


@dataclass(frozen=True)
class Candidate:
    """One concrete cluster configuration under evaluation."""

    key: str
    scheme: str
    procurement: str
    knobs: tuple[tuple[str, object], ...]
    fleet: Fleet
    workload: WorkloadSpec

    @property
    def n_nodes(self) -> int:
        """Total GPU count across the fleet's classes."""
        return fleet_nodes(self.fleet)

    @property
    def homogeneous(self) -> bool:
        """Whether the fleet is a single GPU class."""
        return len(self.fleet) == 1

    @cached_property
    def config(self) -> ExperimentConfig:
        """The full config of a homogeneous candidate (built lazily).

        Mixed fleets have no single config — they decompose into
        per-class :meth:`subruns` instead.
        """
        if not self.homogeneous:
            raise ConfigurationError(
                f"candidate {self.key} is a mixed fleet and has no single "
                "config; simulate its subruns() instead"
            )
        (class_name, count), = self.fleet
        overrides = dict(self.knobs)
        if class_name != "a100":
            overrides["gpu_device"] = class_name
        return self.workload.to_config(
            n_nodes=count,
            procurement=self.procurement,
            **overrides,
        )

    def describe(self) -> dict:
        """JSON-safe identity of the candidate (no full config)."""
        return {
            "key": self.key,
            "scheme": self.scheme,
            "n_nodes": self.n_nodes,
            "procurement": self.procurement,
            "knobs": dict(self.knobs),
            "fleet": dict(self.fleet),
        }

    @cached_property
    def _subruns(self) -> tuple[SubRun, ...]:
        if self.homogeneous:
            (class_name, count), = self.fleet
            return (
                SubRun(
                    gpu_class=class_name,
                    count=count,
                    strict_share=1.0,
                    be_share=1.0,
                    config=self.config,
                ),
            )
        base = self.workload.to_config(
            n_nodes=1, procurement=self.procurement, **dict(self.knobs)
        )
        stats = stream_stats(base)
        strict_shares, be_shares = split_streams(
            self.fleet,
            strict_latency=stats.strict_latency,
            slo=stats.slo,
            strict_work_rate=stats.strict_work_rate,
        )
        rate = self.workload.resolved_rate()
        strict_rate = rate * self.workload.strict_fraction
        be_rate = rate - strict_rate
        subruns = []
        for index, (class_name, count) in enumerate(self.fleet):
            class_strict = strict_shares[index] * strict_rate
            class_rate = class_strict + be_shares[index] * be_rate
            strict_fraction = (
                class_strict / class_rate if class_rate > 0.0 else 0.0
            )
            config = dataclasses.replace(
                base,
                n_nodes=count,
                rate=class_rate,
                strict_fraction=strict_fraction,
                gpu_device=class_name,
            )
            subruns.append(
                SubRun(
                    gpu_class=class_name,
                    count=count,
                    strict_share=strict_shares[index],
                    be_share=be_shares[index],
                    config=config,
                )
            )
        return tuple(subruns)

    def subruns(self) -> tuple[SubRun, ...]:
        """Per-class simulation slices (one entry for homogeneous fleets).

        A homogeneous candidate's single subrun carries ``self.config``
        unchanged, so its run key, span log, and cache digest are
        identical to the pre-heterogeneity planner's.
        """
        return self._subruns


@dataclass(frozen=True)
class CandidateGrid:
    """The supply-side search space of a planning run."""

    n_nodes: tuple[int, ...] = DEFAULT_NODE_COUNTS
    procurement: tuple[str, ...] = PROCUREMENT_MODES
    schemes: tuple[str, ...] = ("protean",)
    #: Extra config dimensions: ``(("prewarm_containers", (1, 3)), ...)``.
    #: A mapping of name → values is accepted and normalised.
    knobs: tuple[tuple[str, tuple], ...] = ()
    #: GPU classes in the fleet lattice. The default single ``a100``
    #: keeps the legacy homogeneous grid (and its ``n{count}`` keys).
    gpu_classes: tuple[str, ...] = DEFAULT_GPU_CLASSES
    #: Per-class node counts crossed into fleets when several classes are
    #: named (0 allowed — a class may be absent from a fleet). Defaults
    #: to ``(0, *n_nodes)``.
    class_counts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_nodes", tuple(self.n_nodes))
        object.__setattr__(self, "procurement", tuple(self.procurement))
        if not self.n_nodes:
            raise ConfigurationError("candidate grid needs at least one n_nodes")
        for n in self.n_nodes:
            if not isinstance(n, int) or n < 1:
                raise ConfigurationError(
                    f"n_nodes entries must be positive integers, got {n!r}"
                )
        if len(set(self.n_nodes)) != len(self.n_nodes):
            raise ConfigurationError("duplicate n_nodes entries in grid")
        if not self.procurement:
            raise ConfigurationError(
                "candidate grid needs at least one procurement mode"
            )
        for mode in self.procurement:
            if mode not in PROCUREMENT_MODES:
                raise ConfigurationError(
                    f"unknown procurement mode {mode!r}; "
                    f"known: {', '.join(PROCUREMENT_MODES)}"
                )
        if not self.schemes:
            raise ConfigurationError("candidate grid needs at least one scheme")
        # Resolve through the registry now: unknown schemes fail fast with
        # the registry's ConfigurationError, and aliases canonicalise so
        # grid keys are stable.
        object.__setattr__(
            self,
            "schemes",
            tuple(canonical_name(name) for name in self.schemes),
        )
        if len(set(self.schemes)) != len(self.schemes):
            raise ConfigurationError("duplicate schemes in grid")
        if "oracle" in self.schemes:
            raise ConfigurationError(
                "the oracle scheme is not plannable: it needs a per-run "
                "geometry plan and models no deployable policy"
            )
        knobs = self.knobs
        if isinstance(knobs, Mapping):
            knobs = tuple(sorted(knobs.items()))
        normalised = []
        allowed = set(sweepable_knobs())
        for name, values in knobs:
            if name not in allowed:
                raise ConfigurationError(
                    f"unknown planner knob {name!r}; sweepable: "
                    f"{', '.join(sweepable_knobs())}"
                )
            values = tuple(values)
            if not values:
                raise ConfigurationError(f"knob {name!r} has no values")
            normalised.append((name, values))
        object.__setattr__(self, "knobs", tuple(normalised))

        if not self.gpu_classes:
            raise ConfigurationError("candidate grid needs at least one GPU class")
        # Canonicalise (and therefore sort) class names so fleet tuples
        # and candidate keys are deterministic.
        classes = tuple(
            sorted(gpu_class(name).name for name in self.gpu_classes)
        )
        if len(set(classes)) != len(classes):
            raise ConfigurationError("duplicate GPU classes in grid")
        object.__setattr__(self, "gpu_classes", classes)
        counts = tuple(self.class_counts)
        for count in counts:
            if not isinstance(count, int) or count < 0:
                raise ConfigurationError(
                    f"class_counts entries must be non-negative integers, "
                    f"got {count!r}"
                )
        counts = tuple(sorted(set(counts)))
        if self.heterogeneous and not counts:
            counts = tuple(sorted({0, *self.n_nodes}))
        if not self.heterogeneous and counts:
            raise ConfigurationError(
                "class_counts applies only to multi-class grids; "
                "use n_nodes for a single GPU class"
            )
        object.__setattr__(self, "class_counts", counts)

    @property
    def heterogeneous(self) -> bool:
        """Whether the grid searches mixed fleets."""
        return len(self.gpu_classes) > 1

    def fleets(self) -> tuple[Fleet, ...]:
        """The fleet axis, in deterministic enumeration order."""
        if not self.heterogeneous:
            (class_name,) = self.gpu_classes
            return tuple(((class_name, n),) for n in self.n_nodes)
        entries = []
        for combo in itertools.product(
            self.class_counts, repeat=len(self.gpu_classes)
        ):
            if sum(combo) == 0:
                continue
            entries.append(
                tuple(
                    (name, count)
                    for name, count in zip(self.gpu_classes, combo)
                    if count > 0
                )
            )
        return tuple(entries)

    def __len__(self) -> int:
        if self.heterogeneous:
            total = len(self.class_counts) ** len(self.gpu_classes)
            if 0 in self.class_counts:
                total -= 1  # the empty fleet is not a candidate
        else:
            total = len(self.n_nodes)
        total *= len(self.procurement) * len(self.schemes)
        for _name, values in self.knobs:
            total *= len(values)
        return total

    def candidates(self, workload: WorkloadSpec) -> tuple[Candidate, ...]:
        """Cross the grid with ``workload`` into concrete candidates.

        Deterministic order: scheme → procurement → fleet → knob
        combinations, matching declaration order — candidate keys double
        as stable run keys for the parallel work-list. Homogeneous a100
        grids keep the legacy ``scheme/procurement/n4`` key format;
        fleet grids use ``scheme/procurement/a100:2+t4:4``.
        """
        knob_names = [name for name, _values in self.knobs]
        knob_spaces = [values for _name, values in self.knobs]
        legacy_keys = self.gpu_classes == DEFAULT_GPU_CLASSES
        entries = []
        for scheme in self.schemes:
            for procurement in self.procurement:
                for fleet in self.fleets():
                    if legacy_keys:
                        stem = f"{scheme}/{procurement}/n{fleet_nodes(fleet)}"
                    else:
                        stem = f"{scheme}/{procurement}/{fleet_key(fleet)}"
                    for combo in itertools.product(*knob_spaces):
                        knobs = tuple(zip(knob_names, combo))
                        key = stem + "".join(
                            f"/{k}={v}" for k, v in knobs
                        )
                        entries.append(
                            Candidate(
                                key=key,
                                scheme=scheme,
                                procurement=procurement,
                                knobs=knobs,
                                fleet=fleet,
                                workload=workload,
                            )
                        )
        return tuple(entries)

    # ------------------------------------------------------------------
    # Serialisation (grid files for the CLI)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation; round-trips via :meth:`from_dict`."""
        payload = {
            "n_nodes": list(self.n_nodes),
            "procurement": list(self.procurement),
            "schemes": list(self.schemes),
            "knobs": {name: list(values) for name, values in self.knobs},
        }
        if self.gpu_classes != DEFAULT_GPU_CLASSES:
            payload["gpu_classes"] = list(self.gpu_classes)
            payload["class_counts"] = list(self.class_counts)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidateGrid":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"grid payload must be a dict, got {type(payload).__name__}"
            )
        known = {
            "n_nodes",
            "procurement",
            "schemes",
            "knobs",
            "gpu_classes",
            "class_counts",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown grid field(s): {', '.join(sorted(unknown))}"
            )
        data = dict(payload)
        for field_name in ("n_nodes", "procurement", "schemes",
                           "gpu_classes", "class_counts"):
            if field_name in data:
                data[field_name] = tuple(data[field_name])
        if "knobs" in data:
            data["knobs"] = {
                name: tuple(values) for name, values in data["knobs"].items()
            }
        return cls(**data)


def _mixed_fleet(fleet: Mapping[str, int]) -> Fleet:
    return canonical_fleet(fleet)


#: Named grids for ``python -m repro plan --grid <preset>``.
GRID_PRESETS: dict[str, CandidateGrid] = {
    # Tiny mixed a100+t4 lattice for the CI smoke run: small enough to
    # simulate exhaustively, rich enough that the cheapest feasible
    # fleet is mixed (one a100 carries the strict stream, t4s soak up
    # best-effort work at a fraction of the price).
    "hetero-smoke": CandidateGrid(
        procurement=("on_demand_only",),
        schemes=("protean",),
        gpu_classes=("a100", "t4"),
        class_counts=(0, 1, 2),
    ),
    # The benchmark lattice: three classes × seven counts × three
    # procurement modes = 1026 candidates, ~68× the original planner's
    # default 15-candidate space. Screened in milliseconds by the
    # vectorised bounds; only the frontier is ever simulated.
    "hetero-wide": CandidateGrid(
        schemes=("protean",),
        gpu_classes=("a100", "h100", "t4"),
        class_counts=(0, 2, 4, 6, 8, 12, 16),
    ),
}
