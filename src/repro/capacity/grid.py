"""Declarative candidate grids of cluster configurations.

A :class:`CandidateGrid` names the supply-side dimensions the planner
searches: cluster sizes, procurement modes, schemes (resolved through the
scheme registry), and optional extra :class:`ExperimentConfig` knobs
(reconfigurator/autoscaler settings such as ``rotation_period`` or
``prewarm_containers``). :meth:`CandidateGrid.candidates` crosses the
dimensions with a :class:`~repro.capacity.spec.WorkloadSpec` into
concrete :class:`Candidate` entries, each carrying a fully-built config —
ready to screen analytically and, if admitted, to simulate.

Unknown dimension or knob names raise
:class:`~repro.errors.ConfigurationError`, consistent with the
``ExperimentConfig.from_dict`` normalisation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Mapping

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.schemes import canonical_name
from repro.capacity.spec import WorkloadSpec

#: Default cluster sizes searched when the caller does not narrow them.
DEFAULT_NODE_COUNTS = (2, 4, 6, 8, 12)

#: Procurement modes understood by the runner.
PROCUREMENT_MODES = ("on_demand_only", "hybrid", "spot_only")

#: ExperimentConfig fields the grid/spec own; everything else that is a
#: config field may be swept as a knob.
_RESERVED_FIELDS = frozenset(
    {
        "n_nodes",
        "procurement",
        "strict_model",
        "trace",
        "rate",
        "offered_load",
        "duration",
        "warmup",
        "drain",
        "scale",
        "slo_multiplier",
        "strict_fraction",
        "rotation_period",
        "spot_availability",
        "seed",
        "fault_plan",
        "audit",
        "audit_interval",
        "audit_fail_fast",
        "tracing",
        "telemetry_interval",
        "batched_arrivals",
    }
)


def sweepable_knobs() -> tuple[str, ...]:
    """Config fields a grid may sweep (sorted)."""
    return tuple(
        sorted(
            spec.name
            for spec in fields(ExperimentConfig)
            if spec.name not in _RESERVED_FIELDS
        )
    )


@dataclass(frozen=True)
class Candidate:
    """One concrete cluster configuration under evaluation."""

    key: str
    scheme: str
    n_nodes: int
    procurement: str
    knobs: tuple[tuple[str, object], ...]
    config: ExperimentConfig

    def describe(self) -> dict:
        """JSON-safe identity of the candidate (no full config)."""
        return {
            "key": self.key,
            "scheme": self.scheme,
            "n_nodes": self.n_nodes,
            "procurement": self.procurement,
            "knobs": dict(self.knobs),
        }


@dataclass(frozen=True)
class CandidateGrid:
    """The supply-side search space of a planning run."""

    n_nodes: tuple[int, ...] = DEFAULT_NODE_COUNTS
    procurement: tuple[str, ...] = PROCUREMENT_MODES
    schemes: tuple[str, ...] = ("protean",)
    #: Extra config dimensions: ``(("prewarm_containers", (1, 3)), ...)``.
    #: A mapping of name → values is accepted and normalised.
    knobs: tuple[tuple[str, tuple], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_nodes", tuple(self.n_nodes))
        object.__setattr__(self, "procurement", tuple(self.procurement))
        if not self.n_nodes:
            raise ConfigurationError("candidate grid needs at least one n_nodes")
        for n in self.n_nodes:
            if not isinstance(n, int) or n < 1:
                raise ConfigurationError(
                    f"n_nodes entries must be positive integers, got {n!r}"
                )
        if len(set(self.n_nodes)) != len(self.n_nodes):
            raise ConfigurationError("duplicate n_nodes entries in grid")
        if not self.procurement:
            raise ConfigurationError(
                "candidate grid needs at least one procurement mode"
            )
        for mode in self.procurement:
            if mode not in PROCUREMENT_MODES:
                raise ConfigurationError(
                    f"unknown procurement mode {mode!r}; "
                    f"known: {', '.join(PROCUREMENT_MODES)}"
                )
        if not self.schemes:
            raise ConfigurationError("candidate grid needs at least one scheme")
        # Resolve through the registry now: unknown schemes fail fast with
        # the registry's ConfigurationError, and aliases canonicalise so
        # grid keys are stable.
        object.__setattr__(
            self,
            "schemes",
            tuple(canonical_name(name) for name in self.schemes),
        )
        if len(set(self.schemes)) != len(self.schemes):
            raise ConfigurationError("duplicate schemes in grid")
        if "oracle" in self.schemes:
            raise ConfigurationError(
                "the oracle scheme is not plannable: it needs a per-run "
                "geometry plan and models no deployable policy"
            )
        knobs = self.knobs
        if isinstance(knobs, Mapping):
            knobs = tuple(sorted(knobs.items()))
        normalised = []
        allowed = set(sweepable_knobs())
        for name, values in knobs:
            if name not in allowed:
                raise ConfigurationError(
                    f"unknown planner knob {name!r}; sweepable: "
                    f"{', '.join(sweepable_knobs())}"
                )
            values = tuple(values)
            if not values:
                raise ConfigurationError(f"knob {name!r} has no values")
            normalised.append((name, values))
        object.__setattr__(self, "knobs", tuple(normalised))

    def __len__(self) -> int:
        total = len(self.n_nodes) * len(self.procurement) * len(self.schemes)
        for _name, values in self.knobs:
            total *= len(values)
        return total

    def candidates(self, workload: WorkloadSpec) -> tuple[Candidate, ...]:
        """Cross the grid with ``workload`` into concrete candidates.

        Deterministic order: scheme → procurement → n_nodes → knob
        combinations, matching declaration order — candidate keys double
        as stable run keys for the parallel work-list.
        """
        knob_names = [name for name, _values in self.knobs]
        knob_spaces = [values for _name, values in self.knobs]
        entries = []
        for scheme in self.schemes:
            for procurement in self.procurement:
                for n_nodes in self.n_nodes:
                    for combo in itertools.product(*knob_spaces):
                        knobs = tuple(zip(knob_names, combo))
                        key = f"{scheme}/{procurement}/n{n_nodes}"
                        key += "".join(f"/{k}={v}" for k, v in knobs)
                        entries.append(
                            Candidate(
                                key=key,
                                scheme=scheme,
                                n_nodes=n_nodes,
                                procurement=procurement,
                                knobs=knobs,
                                config=workload.to_config(
                                    n_nodes=n_nodes,
                                    procurement=procurement,
                                    **dict(knobs),
                                ),
                            )
                        )
        return tuple(entries)

    # ------------------------------------------------------------------
    # Serialisation (grid files for the CLI)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation; round-trips via :meth:`from_dict`."""
        return {
            "n_nodes": list(self.n_nodes),
            "procurement": list(self.procurement),
            "schemes": list(self.schemes),
            "knobs": {name: list(values) for name, values in self.knobs},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidateGrid":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"grid payload must be a dict, got {type(payload).__name__}"
            )
        known = {"n_nodes", "procurement", "schemes", "knobs"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown grid field(s): {', '.join(sorted(unknown))}"
            )
        data = dict(payload)
        if "n_nodes" in data:
            data["n_nodes"] = tuple(data["n_nodes"])
        if "procurement" in data:
            data["procurement"] = tuple(data["procurement"])
        if "schemes" in data:
            data["schemes"] = tuple(data["schemes"])
        if "knobs" in data:
            data["knobs"] = {
                name: tuple(values) for name, values in data["knobs"].items()
            }
        return cls(**data)
