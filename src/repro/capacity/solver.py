"""Mélange-style heterogeneous fleet allocator.

Given a workload, a scheme, and a procurement mode, :func:`solve_fleet`
finds the **cheapest mixed fleet whose conservative analytic bound meets
the attainment target** — the same Erlang-C feasibility criterion the
pre-screen's domination rule trusts (PAPERS.md: Mélange frames GPU
selection as cost minimisation over a GPU × request-size allocation
matrix; here the "buckets" are the strict and best-effort streams and
the bound generator is :func:`repro.capacity.screen.analytic_bound`).

The search is exact, not a heuristic: fleet cost is strictly monotone in
every per-class count (adding a GPU always costs more), so a
Dijkstra-style cheapest-first walk over the count lattice — pop the
cheapest unvisited fleet, test feasibility, push its +1-per-class
neighbours — terminates at the *global* cheapest feasible vertex the
first time a feasible fleet is popped. No feasible fleet can be cheaper
than the first feasible pop, because every fleet cheaper than it was
popped (and found infeasible) earlier. Ties break by the canonical count
tuple so the answer is deterministic.

The solver proposes; simulation disposes. :func:`repro.capacity.planner.
plan` records the solver's pick per candidate group in
``report.extra["solver"]`` and validates it through the same staged
simulation + dominator-escalation pipeline as every other candidate, so
"solver pick == simulated optimum of the conservatively-feasible set"
stays a checked property, not an assumption (see the solver equality
tests and the CI hetero-smoke step).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

from repro.capacity.fleet import (
    Fleet,
    fleet_hourly_cost,
    fleet_key,
    gpu_class,
    stream_stats,
)
from repro.capacity.grid import Candidate
from repro.capacity.screen import (
    DEFAULT_MARGIN,
    TRACE_BURST_FACTOR,
    TRACE_MEAN_FACTOR,
    AnalyticBound,
    _base_config,
    _fleet_bound,
    _pessimistic_efficiency,
)
from repro.capacity.spec import WorkloadSpec
from repro.errors import ConfigurationError

#: Default per-class count ceiling of the solver lattice.
DEFAULT_MAX_PER_CLASS = 16


@dataclass(frozen=True)
class FleetSolution:
    """The solver's answer for one (workload, scheme, procurement)."""

    fleet: Fleet
    scheme: str
    procurement: str
    #: Conservative/optimistic bounds of the winning fleet.
    bound: AnalyticBound
    #: Steady-state $/hour (same pricing as the screen's estimates).
    est_hourly_cost: float
    #: Estimated $ per 1k requests at the workload's offered rate.
    est_cost_per_1k_requests: float
    #: Lattice vertices popped before the winner — the search effort.
    explored: int
    #: Mélange-style cost matrix: $/1k requests per class × bucket.
    cost_matrix: tuple[dict, ...]

    @property
    def key_fragment(self) -> str:
        return fleet_key(self.fleet)

    def to_dict(self) -> dict:
        return {
            "fleet": dict(self.fleet),
            "fleet_key": self.key_fragment,
            "scheme": self.scheme,
            "procurement": self.procurement,
            "est_hourly_cost": round(self.est_hourly_cost, 4),
            "est_cost_per_1k_requests": round(
                self.est_cost_per_1k_requests, 4
            ),
            "bound": self.bound.to_dict(),
            "explored": self.explored,
            "cost_matrix": list(self.cost_matrix),
        }


def solver_cost_matrix(
    workload: WorkloadSpec,
    *,
    classes: tuple[str, ...],
    procurement: str,
) -> tuple[dict, ...]:
    """Per-(class, bucket) serving cost: the Mélange allocation matrix.

    For each GPU class and each request bucket (strict / best-effort),
    the dollar cost of serving one thousand requests of that bucket on
    that class alone at full utilisation — hourly rate divided by the
    class's request throughput. Strict rows are ``inf`` on classes that
    cannot meet the strict SLO even idle. This is the matrix the lattice
    search implicitly minimises over; it is exported for reports and
    docs rather than consumed by the search itself.
    """
    config = workload.to_config(n_nodes=1, procurement=procurement)
    stats = stream_stats(config)
    rate = workload.resolved_rate()
    strict_requests = rate * workload.strict_fraction
    be_requests = rate - strict_requests
    rows = []
    for name in classes:
        entry = gpu_class(name)
        hourly = fleet_hourly_cost(
            ((entry.name, 1),), procurement, workload.spot_availability
        )
        row = {"gpu_class": entry.name, "per_node_hourly": round(hourly, 4)}
        for bucket, requests, work_rate in (
            ("strict", strict_requests, stats.strict_work_rate),
            ("best_effort", be_requests, stats.be_work_rate),
        ):
            if requests <= 0.0 or work_rate <= 0.0:
                row[f"{bucket}_$per_1k"] = None
                continue
            if bucket == "strict" and stats.slo < (
                stats.strict_latency / entry.speed
            ):
                row[f"{bucket}_$per_1k"] = float("inf")
                continue
            work_per_request = work_rate / requests
            served_per_second = (entry.speed * entry.efficiency) / (
                work_per_request
            )
            row[f"{bucket}_$per_1k"] = round(
                1000.0 * hourly / 3600.0 / served_per_second, 6
            )
        rows.append(row)
    return tuple(rows)


def solve_fleet(
    workload: WorkloadSpec,
    *,
    scheme: str = "protean",
    procurement: str = "on_demand_only",
    classes: tuple[str, ...] = ("a100",),
    max_per_class: int = DEFAULT_MAX_PER_CLASS,
    target: float = 0.99,
    margin: float = DEFAULT_MARGIN,
    knobs: Mapping[str, object] | tuple[tuple[str, object], ...] = (),
) -> FleetSolution | None:
    """Cheapest fleet over ``classes`` meeting ``target`` conservatively.

    Pure-python exact search (see module docstring for the optimality
    argument). Returns ``None`` when no fleet within ``max_per_class``
    GPUs of each class clears the conservative bound — the caller should
    widen the lattice or relax the target, exactly as with an empty
    plan recommendation.
    """
    if not 0.0 < target <= 1.0:
        raise ConfigurationError("attainment target must lie in (0, 1]")
    if max_per_class < 1:
        raise ConfigurationError("max_per_class must be at least 1")
    class_names = tuple(sorted(gpu_class(name).name for name in classes))
    if len(set(class_names)) != len(class_names):
        raise ConfigurationError("duplicate GPU classes for the solver")
    knob_items = (
        tuple(sorted(knobs.items()))
        if isinstance(knobs, Mapping)
        else tuple(knobs)
    )

    def candidate_for(counts: tuple[int, ...]) -> Candidate:
        fleet = tuple(
            (name, count)
            for name, count in zip(class_names, counts)
            if count > 0
        )
        return Candidate(
            key=f"solver/{scheme}/{procurement}/{fleet_key(fleet)}",
            scheme=scheme,
            procurement=procurement,
            knobs=knob_items,
            fleet=fleet,
            workload=workload,
        )

    # Workload statistics and pessimistic factors are fleet-independent:
    # compute once, reuse for every lattice vertex.
    probe = candidate_for(tuple(1 for _ in class_names))
    config = _base_config(probe)
    stats = stream_stats(config)
    efficiency = _pessimistic_efficiency(scheme, config.strict_profile())
    mean_factor = TRACE_MEAN_FACTOR[config.trace]
    burst_factor = TRACE_BURST_FACTOR[config.trace]

    per_node = [
        fleet_hourly_cost(
            ((name, 1),), procurement, workload.spot_availability
        )
        for name in class_names
    ]

    def cost_of(counts: tuple[int, ...]) -> float:
        total = 0.0
        for index, count in enumerate(counts):
            total = total + count * per_node[index]
        return total

    origin = tuple(0 for _ in class_names)
    heap: list[tuple[float, tuple[int, ...]]] = [(0.0, origin)]
    seen = {origin}
    explored = 0
    while heap:
        cost, counts = heapq.heappop(heap)
        if any(counts):
            explored += 1
            candidate = candidate_for(counts)
            bound = _fleet_bound(
                candidate,
                stats,
                margin=margin,
                efficiency=efficiency,
                mean_factor=mean_factor,
                burst_factor=burst_factor,
                spot_availability=config.spot_availability,
            )
            if bound.attainment_lower >= target:
                rate = workload.resolved_rate()
                per_1k = (
                    1000.0 * (cost / 3600.0) / rate
                    if rate > 0
                    else float("inf")
                )
                return FleetSolution(
                    fleet=candidate.fleet,
                    scheme=scheme,
                    procurement=procurement,
                    bound=bound,
                    est_hourly_cost=cost,
                    est_cost_per_1k_requests=per_1k,
                    explored=explored,
                    cost_matrix=solver_cost_matrix(
                        workload, classes=class_names, procurement=procurement
                    ),
                )
        for index in range(len(class_names)):
            if counts[index] >= max_per_class:
                continue
            neighbour = (
                counts[:index] + (counts[index] + 1,) + counts[index + 1 :]
            )
            if neighbour in seen:
                continue
            seen.add(neighbour)
            heapq.heappush(heap, (cost_of(neighbour), neighbour))
    return None
