"""Two-stage what-if capacity planning.

:func:`plan` answers "what is the cheapest cluster configuration that
still meets my SLO attainment target?" for a fixed workload:

1. **Analytic pre-screen** (:mod:`repro.capacity.screen`) bounds every
   candidate's attainment in closed form and prunes the infeasible and
   dominated ones — cheaply, with a conservative admissibility margin so
   the true optimum always survives to stage two.
2. **Simulation validation** fans the survivors out through
   :mod:`repro.parallel` (``jobs`` worker processes, bit-identical to
   serial) and measures real attainment, dollar cost, and tail latency
   per candidate. When a conservative dominator turns out to *miss* the
   target under simulation, the planner **escalates**: the candidates it
   dominated are re-admitted smallest-first and simulated until the
   group produces a validated-feasible member (or runs out). Domination
   pruning is therefore sound by construction — a candidate stays pruned
   only while a cheaper validated-feasible configuration exists below
   it — rather than relying on the analytic lower bound being perfectly
   calibrated.

The result is a :class:`~repro.capacity.report.PlanReport`: the simulated
cost-vs-attainment Pareto frontier, the recommended configuration
(cheapest candidate meeting the target, serialised via the versioned
``ExperimentConfig.to_dict``), and per-candidate evidence including the
prune reason for everything screened out.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

from repro.capacity.grid import CandidateGrid
from repro.capacity.report import (
    CandidateOutcome,
    PlanReport,
    SimulationEvidence,
    pareto_frontier,
)
from repro.capacity.screen import (
    DEFAULT_MARGIN,
    PRUNE_DOMINATED,
    ScreenDecision,
    screen_candidates,
)
from repro.capacity.spec import PLAN_PRESETS, WorkloadSpec
from repro.cluster.pricing import cost_per_1k_requests
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult

#: Default attainment goal: ≥99% of strict requests inside their SLO.
DEFAULT_TARGET = 0.99


def resolve_workload(workload: WorkloadSpec | dict | str) -> WorkloadSpec:
    """Coerce a preset name, payload dict, or spec into a WorkloadSpec."""
    if isinstance(workload, WorkloadSpec):
        return workload
    if isinstance(workload, str):
        spec = PLAN_PRESETS.get(workload.lower().strip())
        if spec is None:
            raise ConfigurationError(
                f"unknown workload preset {workload!r}; "
                f"known: {', '.join(sorted(PLAN_PRESETS))}"
            )
        return spec
    if isinstance(workload, dict):
        return WorkloadSpec.from_dict(workload)
    raise ConfigurationError(
        "workload must be a WorkloadSpec, a preset name, or a dict; "
        f"got {type(workload).__name__}"
    )


def _evidence(result: ExperimentResult) -> SimulationEvidence:
    summary = result.summary
    attainment = summary.slo_compliance
    if math.isnan(attainment):  # pragma: no cover - spec requires strict>0
        attainment = 0.0
    return SimulationEvidence(
        attainment=attainment,
        total_cost=summary.total_cost,
        cost_per_1k_requests=cost_per_1k_requests(
            summary.total_cost, summary.requests_served
        ),
        requests_served=summary.requests_served,
        strict_p99=summary.strict_p99,
        evictions=int(result.extras.get("evictions", 0)),
    )


def _escalate(
    decisions: list[ScreenDecision],
    results: dict,
    simulate: Callable,
    target: float,
) -> list[ScreenDecision]:
    """Re-admit dominated candidates whose dominator failed validation.

    Domination pruning assumed a cheaper same-group candidate would
    validate; while a group has no simulated member meeting the target,
    its smallest still-pruned dominated candidate is simulated next
    (one per group per round, batched across groups through the same
    parallel fan-out). Mutates ``results`` in place and returns the
    updated decision list, with escalated candidates marked admitted.
    """
    groups: dict[tuple, list[ScreenDecision]] = {}
    for decision in decisions:
        candidate = decision.candidate
        groups.setdefault(
            (candidate.scheme, candidate.procurement, candidate.knobs), []
        ).append(decision)

    escalated: set[str] = set()
    while True:
        batch = []
        for members in groups.values():
            satisfied = any(
                decision.candidate.key in results
                and _evidence(
                    results[decision.candidate.key]
                ).attainment
                >= target
                for decision in members
            )
            if satisfied:
                continue
            pending = sorted(
                (
                    decision.candidate
                    for decision in members
                    if decision.prune_reason == PRUNE_DOMINATED
                    and decision.candidate.key not in results
                ),
                key=lambda candidate: candidate.n_nodes,
            )
            if pending:
                batch.append(pending[0])
        if not batch:
            break
        results.update(simulate(batch))
        escalated.update(candidate.key for candidate in batch)

    if not escalated:
        return decisions
    return [
        dataclasses.replace(
            decision,
            admitted=True,
            prune_reason=None,
            detail=(
                "re-admitted: the conservative dominator missed the "
                "target under simulation"
            ),
        )
        if decision.candidate.key in escalated
        else decision
        for decision in decisions
    ]


def simulated_optimum(
    outcomes: tuple[CandidateOutcome, ...] | list[CandidateOutcome],
    target: float,
) -> str | None:
    """Key of the cheapest simulated candidate meeting ``target``.

    Ties break toward higher attainment, then lexicographic key, so the
    answer is deterministic. ``None`` when nothing qualifies.
    """
    feasible = [
        outcome
        for outcome in outcomes
        if outcome.simulated is not None
        and outcome.simulated.attainment >= target
    ]
    if not feasible:
        return None
    best = min(
        feasible,
        key=lambda o: (
            o.simulated.total_cost,
            -o.simulated.attainment,
            o.key,
        ),
    )
    return best.key


def plan(
    workload: WorkloadSpec | dict | str,
    *,
    grid: CandidateGrid | dict | None = None,
    target: float = DEFAULT_TARGET,
    margin: float = DEFAULT_MARGIN,
    jobs: int | None = None,
    exhaustive: bool = False,
    progress: Callable[[str, float], None] | None = None,
) -> PlanReport:
    """Search ``grid`` for the cheapest configuration meeting ``target``.

    Stable entry point: ``workload`` positional, everything else
    keyword-only. ``workload`` is a :class:`WorkloadSpec`, a preset name
    (``"wiki"``, ``"twitter"``, ...), or a spec payload dict; ``grid``
    defaults to :class:`CandidateGrid`'s standard search space.

    ``jobs`` controls the stage-two fan-out exactly like
    :func:`repro.experiments.run_comparison` (``None`` resolves the
    ambient ``--jobs``/``REPRO_JOBS`` default). With ``exhaustive=True``
    the pruned candidates are simulated too — the screen's verdicts are
    still recorded, which is how the property tests and
    ``benchmarks/bench_planner.py`` audit the pre-screen against ground
    truth.
    """
    from repro.parallel import RunRequest, execute_keyed

    if not 0.0 < target <= 1.0:
        raise ConfigurationError("attainment target must lie in (0, 1]")
    spec = resolve_workload(workload)
    if grid is None:
        grid = CandidateGrid()
    elif isinstance(grid, dict):
        grid = CandidateGrid.from_dict(grid)
    elif not isinstance(grid, CandidateGrid):
        raise ConfigurationError(
            f"grid must be a CandidateGrid or dict, got {type(grid).__name__}"
        )

    candidates = grid.candidates(spec)
    decisions = screen_candidates(candidates, target=target, margin=margin)

    def simulate(batch):
        return execute_keyed(
            [
                RunRequest(
                    key=candidate.key,
                    scheme=candidate.scheme,
                    config=candidate.config,
                )
                for candidate in batch
            ],
            jobs=jobs,
            progress=progress,
        )

    results = simulate(
        [
            decision.candidate
            for decision in decisions
            if exhaustive or decision.admitted
        ]
    )

    if not exhaustive:
        decisions = _escalate(decisions, results, simulate, target)

    outcomes = tuple(
        CandidateOutcome(
            decision=decision,
            simulated=(
                _evidence(results[decision.candidate.key])
                if decision.candidate.key in results
                else None
            ),
        )
        for decision in decisions
    )
    frontier = pareto_frontier(
        [
            (o.key, o.simulated.total_cost, o.simulated.attainment)
            for o in outcomes
            if o.simulated is not None
        ]
    )
    return PlanReport(
        workload=spec,
        grid=grid,
        target=target,
        margin=margin,
        outcomes=outcomes,
        frontier=frontier,
        recommended=simulated_optimum(outcomes, target),
        exhaustive=exhaustive,
    )
