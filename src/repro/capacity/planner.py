"""Two-stage what-if capacity planning.

:func:`plan` answers "what is the cheapest cluster configuration that
still meets my SLO attainment target?" for a fixed workload:

1. **Analytic pre-screen** (:mod:`repro.capacity.screen`) bounds every
   candidate's attainment in closed form — vectorised over the whole
   grid — and prunes the infeasible and dominated ones cheaply, with a
   conservative admissibility margin so the true optimum always survives
   to stage two. On heterogeneous grids the Mélange-style allocator
   (:mod:`repro.capacity.solver`) additionally proposes the cheapest
   conservatively-feasible mixed fleet per candidate group, recorded in
   ``report.extra["solver"]``.
2. **Simulation validation** fans the survivors out through
   :mod:`repro.parallel` (``jobs`` worker processes, bit-identical to
   serial) and measures real attainment, dollar cost, and tail latency
   per candidate. Mixed fleets decompose into per-class homogeneous
   sub-runs whose evidence is merged back (attainment weighted by strict
   request count, costs summed). Every sub-run goes through a
   content-addressed :class:`~repro.capacity.cache.SimulationCache`, so
   overlapping sub-runs, escalation rounds, and repeated plans never
   simulate the same configuration twice. When a conservative dominator
   turns out to *miss* the target under simulation, the planner
   **escalates**: dominated candidates lacking a validated
   componentwise-smaller fleet are re-admitted cheapest-first and
   simulated until every group is covered (or runs out). Domination
   pruning is therefore sound by construction — a candidate stays pruned
   only while a strictly-cheaper validated-feasible configuration exists
   below it — rather than relying on the analytic lower bound being
   perfectly calibrated.

The result is a :class:`~repro.capacity.report.PlanReport`: the simulated
cost-vs-attainment Pareto frontier, the recommended configuration
(cheapest candidate meeting the target), per-candidate evidence including
the prune reason for everything screened out, and the cache's hit/miss
accounting.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

from repro.capacity.cache import SimulationCache, config_digest
from repro.capacity.fleet import fleet_subset
from repro.capacity.grid import GRID_PRESETS, Candidate, CandidateGrid, SubRun
from repro.capacity.report import (
    CandidateOutcome,
    PlanReport,
    SimulationEvidence,
    pareto_frontier,
)
from repro.capacity.screen import (
    DEFAULT_MARGIN,
    PRUNE_DOMINATED,
    ScreenDecision,
    screen_candidates,
)
from repro.capacity.spec import PLAN_PRESETS, WorkloadSpec
from repro.cluster.pricing import cost_per_1k_requests
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult

#: Default attainment goal: ≥99% of strict requests inside their SLO.
DEFAULT_TARGET = 0.99


def resolve_workload(workload: WorkloadSpec | dict | str) -> WorkloadSpec:
    """Coerce a preset name, payload dict, or spec into a WorkloadSpec."""
    if isinstance(workload, WorkloadSpec):
        return workload
    if isinstance(workload, str):
        spec = PLAN_PRESETS.get(workload.lower().strip())
        if spec is None:
            raise ConfigurationError(
                f"unknown workload preset {workload!r}; "
                f"known: {', '.join(sorted(PLAN_PRESETS))}"
            )
        return spec
    if isinstance(workload, dict):
        return WorkloadSpec.from_dict(workload)
    raise ConfigurationError(
        "workload must be a WorkloadSpec, a preset name, or a dict; "
        f"got {type(workload).__name__}"
    )


def resolve_grid(grid: CandidateGrid | dict | str | None) -> CandidateGrid:
    """Coerce a grid argument: preset name, payload dict, or grid."""
    if grid is None:
        return CandidateGrid()
    if isinstance(grid, CandidateGrid):
        return grid
    if isinstance(grid, str):
        preset = GRID_PRESETS.get(grid.lower().strip())
        if preset is None:
            raise ConfigurationError(
                f"unknown grid preset {grid!r}; "
                f"known: {', '.join(sorted(GRID_PRESETS))}"
            )
        return preset
    if isinstance(grid, dict):
        return CandidateGrid.from_dict(grid)
    raise ConfigurationError(
        "grid must be a CandidateGrid, a preset name, or a dict; "
        f"got {type(grid).__name__}"
    )


def _evidence(result: ExperimentResult) -> SimulationEvidence:
    summary = result.summary
    attainment = summary.slo_compliance
    if math.isnan(attainment):  # pragma: no cover - spec requires strict>0
        attainment = 0.0
    return SimulationEvidence(
        attainment=attainment,
        total_cost=summary.total_cost,
        cost_per_1k_requests=cost_per_1k_requests(
            summary.total_cost, summary.requests_served
        ),
        requests_served=summary.requests_served,
        strict_p99=summary.strict_p99,
        evictions=int(result.extras.get("evictions", 0)),
    )


def _merge_evidence(
    pairs: list[tuple[SubRun, ExperimentResult]]
) -> SimulationEvidence:
    """Combine per-class sub-run results into one candidate verdict.

    Homogeneous candidates (a single sub-run) reproduce the single-run
    evidence exactly. Mixed fleets sum costs, served requests, and
    evictions across classes; attainment is the strict-request-weighted
    mean (classes that saw no strict traffic carry no attainment
    signal); strict p99 is the worst class's tail.
    """
    if len(pairs) == 1:
        return _evidence(pairs[0][1])
    total_cost = 0.0
    requests_served = 0
    evictions = 0
    weighted_attainment = 0.0
    weight = 0.0
    strict_p99 = 0.0
    for _sub, result in pairs:
        summary = result.summary
        total_cost += summary.total_cost
        requests_served += summary.requests_served
        evictions += int(result.extras.get("evictions", 0))
        strict = summary.strict_requests
        attainment = summary.slo_compliance
        if strict > 0 and not math.isnan(attainment):
            weighted_attainment += strict * attainment
            weight += strict
            if not math.isnan(summary.strict_p99):
                strict_p99 = max(strict_p99, summary.strict_p99)
    return SimulationEvidence(
        attainment=weighted_attainment / weight if weight > 0 else 0.0,
        total_cost=total_cost,
        cost_per_1k_requests=cost_per_1k_requests(
            total_cost, requests_served
        ),
        requests_served=requests_served,
        strict_p99=strict_p99,
        evictions=evictions,
    )


def _escalate(
    decisions: list[ScreenDecision],
    evidences: dict[str, SimulationEvidence],
    simulate: Callable,
    target: float,
) -> list[ScreenDecision]:
    """Re-admit dominated candidates whose dominator failed validation.

    Domination pruning assumed a cheaper componentwise-smaller fleet
    would validate; a dominated candidate may stay pruned only while
    some *validated* (simulated, target-meeting) group member whose
    fleet is a subset of its own exists — that member is strictly
    cheaper, so the pruned candidate cannot be optimal. While any group
    has uncovered dominated candidates, the cheapest one (by analytic
    cost estimate, then size, then key) is simulated next — one per
    group per round, batched across groups through the same parallel
    fan-out. Mutates ``evidences`` in place and returns the updated
    decision list, with escalated candidates marked admitted.
    """
    groups: dict[tuple, list[ScreenDecision]] = {}
    for decision in decisions:
        candidate = decision.candidate
        groups.setdefault(
            (candidate.scheme, candidate.procurement, candidate.knobs), []
        ).append(decision)

    escalated: set[str] = set()
    while True:
        batch = []
        for members in groups.values():
            validated = [
                decision.candidate
                for decision in members
                if decision.candidate.key in evidences
                and evidences[decision.candidate.key].attainment >= target
            ]
            pending = [
                decision
                for decision in members
                if decision.prune_reason == PRUNE_DOMINATED
                and decision.candidate.key not in evidences
                and not any(
                    fleet_subset(winner.fleet, decision.candidate.fleet)
                    for winner in validated
                )
            ]
            if pending:
                pending.sort(
                    key=lambda decision: (
                        decision.bound.est_hourly_cost,
                        decision.candidate.n_nodes,
                        decision.candidate.key,
                    )
                )
                batch.append(pending[0].candidate)
        if not batch:
            break
        evidences.update(simulate(batch))
        escalated.update(candidate.key for candidate in batch)

    if not escalated:
        return decisions
    return [
        dataclasses.replace(
            decision,
            admitted=True,
            prune_reason=None,
            detail=(
                "re-admitted: the conservative dominator missed the "
                "target under simulation"
            ),
        )
        if decision.candidate.key in escalated
        else decision
        for decision in decisions
    ]


def simulated_optimum(
    outcomes: tuple[CandidateOutcome, ...] | list[CandidateOutcome],
    target: float,
) -> str | None:
    """Key of the cheapest simulated candidate meeting ``target``.

    Ties break toward higher attainment, then lexicographic key, so the
    answer is deterministic. ``None`` when nothing qualifies.
    """
    feasible = [
        outcome
        for outcome in outcomes
        if outcome.simulated is not None
        and outcome.simulated.attainment >= target
    ]
    if not feasible:
        return None
    best = min(
        feasible,
        key=lambda o: (
            o.simulated.total_cost,
            -o.simulated.attainment,
            o.key,
        ),
    )
    return best.key


def _solver_proposals(
    spec: WorkloadSpec,
    grid: CandidateGrid,
    *,
    target: float,
    margin: float,
) -> dict:
    """Run the Mélange allocator once per candidate group of the grid."""
    import itertools

    from repro.capacity.solver import solve_fleet

    max_per_class = max(grid.class_counts)
    knob_names = [name for name, _values in grid.knobs]
    knob_spaces = [values for _name, values in grid.knobs]
    proposals = {}
    for scheme in grid.schemes:
        for procurement in grid.procurement:
            for combo in itertools.product(*knob_spaces):
                knobs = tuple(zip(knob_names, combo))
                label = f"{scheme}/{procurement}" + "".join(
                    f"/{k}={v}" for k, v in knobs
                )
                solution = solve_fleet(
                    spec,
                    scheme=scheme,
                    procurement=procurement,
                    classes=grid.gpu_classes,
                    max_per_class=max_per_class,
                    target=target,
                    margin=margin,
                    knobs=knobs,
                )
                if solution is None:
                    proposals[label] = None
                    continue
                payload = solution.to_dict()
                payload["candidate_key"] = (
                    f"{scheme}/{procurement}/{solution.key_fragment}"
                    + "".join(f"/{k}={v}" for k, v in knobs)
                )
                proposals[label] = payload
    return proposals


def plan(
    workload: WorkloadSpec | dict | str,
    *,
    grid: CandidateGrid | dict | str | None = None,
    target: float = DEFAULT_TARGET,
    margin: float = DEFAULT_MARGIN,
    jobs: int | None = None,
    exhaustive: bool = False,
    cache: SimulationCache | None = None,
    progress: Callable[[str, float], None] | None = None,
) -> PlanReport:
    """Search ``grid`` for the cheapest configuration meeting ``target``.

    Stable entry point: ``workload`` positional, everything else
    keyword-only. ``workload`` is a :class:`WorkloadSpec`, a preset name
    (``"wiki"``, ``"twitter"``, ...), or a spec payload dict; ``grid``
    is a :class:`CandidateGrid`, a grid-preset name (``"hetero-smoke"``,
    ...), or a payload dict, defaulting to the standard homogeneous
    search space.

    ``jobs`` controls the stage-two fan-out exactly like
    :func:`repro.experiments.run_comparison` (``None`` resolves the
    ambient ``--jobs``/``REPRO_JOBS`` default). With ``exhaustive=True``
    the pruned candidates are simulated too — the screen's verdicts are
    still recorded, which is how the property tests and
    ``benchmarks/bench_planner.py`` audit the pre-screen against ground
    truth. ``cache`` shares a simulation cache across plan calls;
    ``None`` gives the run its own. Either way the hit/miss accounting
    lands in ``report.cache_stats``.
    """
    from repro.parallel import RunRequest, execute_keyed

    if not 0.0 < target <= 1.0:
        raise ConfigurationError("attainment target must lie in (0, 1]")
    spec = resolve_workload(workload)
    grid = resolve_grid(grid)
    if cache is None:
        cache = SimulationCache()

    candidates = grid.candidates(spec)
    decisions = screen_candidates(candidates, target=target, margin=margin)

    def simulate(batch: list[Candidate]) -> dict[str, SimulationEvidence]:
        requests = []
        pending: dict[str, str] = {}
        batch_subs: list[tuple[Candidate, list[tuple[SubRun, str]]]] = []
        for candidate in batch:
            subs = []
            for sub in candidate.subruns():
                digest = config_digest(candidate.scheme, sub.config)
                subs.append((sub, digest))
                cached = cache.lookup(digest, pending=pending.keys())
                if cached is None and digest not in pending:
                    run_key = (
                        candidate.key
                        if candidate.homogeneous
                        else f"{candidate.key}#{sub.gpu_class}"
                    )
                    pending[digest] = run_key
                    requests.append(
                        RunRequest(
                            key=run_key,
                            scheme=candidate.scheme,
                            config=sub.config,
                        )
                    )
            batch_subs.append((candidate, subs))
        if requests:
            resolved = execute_keyed(requests, jobs=jobs, progress=progress)
            for digest, run_key in pending.items():
                cache.store(digest, resolved[run_key])
        return {
            candidate.key: _merge_evidence(
                [(sub, cache.peek(digest)) for sub, digest in subs]
            )
            for candidate, subs in batch_subs
        }

    evidences = simulate(
        [
            decision.candidate
            for decision in decisions
            if exhaustive or decision.admitted
        ]
    )

    if not exhaustive:
        decisions = _escalate(decisions, evidences, simulate, target)

    outcomes = tuple(
        CandidateOutcome(
            decision=decision,
            simulated=evidences.get(decision.candidate.key),
        )
        for decision in decisions
    )
    frontier = pareto_frontier(
        [
            (o.key, o.simulated.total_cost, o.simulated.attainment)
            for o in outcomes
            if o.simulated is not None
        ]
    )
    extra = {}
    if grid.heterogeneous:
        extra["solver"] = _solver_proposals(
            spec, grid, target=target, margin=margin
        )
    return PlanReport(
        workload=spec,
        grid=grid,
        target=target,
        margin=margin,
        outcomes=outcomes,
        frontier=frontier,
        recommended=simulated_optimum(outcomes, target),
        exhaustive=exhaustive,
        cache_stats=cache.stats(),
        extra=extra,
    )
