"""Content-addressed simulation cache for the capacity planner.

Stage two of the planner simulates candidate configurations — the
expensive part of a planning run. Two different places can ask for the
*same* simulation: mixed fleets decompose into per-class homogeneous
sub-runs that overlap between candidates, and escalation rounds /
repeated :func:`~repro.capacity.planner.plan` calls (staged vs
exhaustive in the property tests, re-planning after a grid tweak)
revisit configurations already measured.

The cache keys each simulation by the **content** of what would run: the
sha256 of the canonical JSON of ``(scheme, ExperimentConfig.to_dict())``.
Because ``to_dict`` is the versioned, normalised serialisation (sorted
keys, every field explicit), two requests collide exactly when the
simulator would be handed identical inputs — and the simulator is
deterministic, so returning the cached result is not an approximation.
Keying by config *identity* or candidate key would miss cross-candidate
overlap; keying by fewer fields would alias distinct runs.

Hit/miss counters are surfaced in ``PlanReport.to_dict()["cache"]`` so a
plan's dedup factor is auditable. A hit is counted whenever a requested
digest is already resolved *or already scheduled* in the current batch
(the second requester shares the first's run); a miss is counted exactly
once per simulation actually executed.
"""

from __future__ import annotations

import hashlib
import json
from typing import AbstractSet

from repro.experiments.config import ExperimentConfig


def config_digest(scheme: str, config: ExperimentConfig) -> str:
    """sha256 content address of one (scheme, config) simulation."""
    payload = {"scheme": scheme, "config": config.to_dict()}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SimulationCache:
    """In-memory content-addressed store of simulation results.

    One instance normally lives for one :func:`plan` call; passing the
    same instance to several calls extends dedup across them (the
    property tests run staged and exhaustive plans off one cache, so the
    exhaustive pass only simulates what the staged pass pruned).
    """

    def __init__(self) -> None:
        self._entries: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def lookup(self, digest: str, *, pending: AbstractSet[str] = frozenset()):
        """Counted lookup: the planner's one read path when scheduling.

        Returns the cached result, or ``None`` when ``digest`` still
        needs simulating. A digest already in ``pending`` (scheduled
        earlier in the same batch) counts as a hit but still returns
        ``None`` — the caller reads it via :meth:`peek` once the batch
        resolves.
        """
        entry = self._entries.get(digest)
        if entry is not None:
            self.hits += 1
            return entry
        if digest in pending:
            self.hits += 1
            return None
        self.misses += 1
        return None

    def peek(self, digest: str):
        """Uncounted read (post-batch result collection)."""
        return self._entries.get(digest)

    def store(self, digest: str, result) -> None:
        self._entries[digest] = result

    def stats(self) -> dict:
        """JSON-safe counters for ``PlanReport.to_dict()["cache"]``."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }
