"""Observability: span tracing, telemetry, and trace export.

The serving stack is instrumented end to end — every request's lifecycle
(``gateway.admit`` → ``queue.wait`` → ``batch.form`` → ``slice.execute``
→ ``complete``/``slo_violation``) and every control-plane action
(reconfiguration, autoscaling, procurement, spot eviction) becomes a
:class:`Span` when a live :class:`SimTracer` is threaded through the
platform. With the default :data:`NULL_TRACER` every trace point is a
constant no-op, keeping the untraced hot path within the <5% overhead
budget.

Typical use::

    config = ExperimentConfig(tracing=True)
    result = run_scheme("protean", config)
    write_chrome_trace(result.tracer, "trace.json")  # open in ui.perfetto.dev

or from the CLI: ``python -m repro trace fig5 --out trace.json``.
"""

from repro.observability.export import (
    text_summary,
    to_trace_events,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.observability.rollup import (
    RollupRow,
    format_rollup,
    rollup_from_jsonl,
    rollup_from_log,
    rollup_spans,
)
from repro.observability.spanlog import (
    DetachedTrace,
    TelemetrySnapshot,
    read_span_jsonl,
    span_log_digest,
    spans_from_log,
    spans_to_log,
)
from repro.observability.span import (
    CATEGORY_AUDIT,
    CATEGORY_CONTROL,
    CATEGORY_FAULT,
    CATEGORY_GPU,
    CATEGORY_PIPELINE,
    CATEGORY_REQUEST,
    CATEGORY_RUN,
    CATEGORY_TENANT,
    Span,
)
from repro.observability.telemetry import (
    Counter,
    Histogram,
    NullTelemetry,
    TelemetryRegistry,
    TelemetrySampler,
)
from repro.observability.tracer import NULL_TRACER, NullTracer, SimTracer, Tracer

__all__ = [
    "CATEGORY_AUDIT",
    "CATEGORY_CONTROL",
    "CATEGORY_FAULT",
    "CATEGORY_GPU",
    "CATEGORY_PIPELINE",
    "CATEGORY_REQUEST",
    "CATEGORY_RUN",
    "CATEGORY_TENANT",
    "Counter",
    "DetachedTrace",
    "Histogram",
    "NULL_TRACER",
    "NullTelemetry",
    "NullTracer",
    "RollupRow",
    "SimTracer",
    "Span",
    "TelemetryRegistry",
    "TelemetrySampler",
    "TelemetrySnapshot",
    "Tracer",
    "format_rollup",
    "read_span_jsonl",
    "rollup_from_jsonl",
    "rollup_from_log",
    "rollup_spans",
    "span_log_digest",
    "spans_from_log",
    "spans_to_log",
    "text_summary",
    "to_trace_events",
    "write_chrome_trace",
    "write_span_jsonl",
]
