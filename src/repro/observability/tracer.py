"""The span tracer: live and null implementations.

Two concrete tracers share one interface:

- :class:`SimTracer` — records spans against the simulator clock into an
  in-memory buffer, ready for export (Perfetto JSON, JSONL, text).
- :class:`NullTracer` — the zero-overhead-when-off fast path. Every
  method is a constant no-op and its telemetry registry hands out shared
  null instruments, so fully-instrumented components cost one no-op call
  per trace point when tracing is disabled. A process-wide singleton
  (:data:`NULL_TRACER`) is the default everywhere a tracer is threaded.

Tracing is an *observer*: tracers never schedule events, never draw from
RNG streams, and never mutate platform state, so enabling tracing leaves
the simulated system bit-identical (the determinism regression test
asserts this).
"""

from __future__ import annotations

from repro.errors import ObservabilityError
from repro.observability.span import CATEGORY_CONTROL, Span
from repro.observability.telemetry import NullTelemetry, TelemetryRegistry
from repro.simulation.clock import Clock


class Tracer:
    """Interface shared by :class:`SimTracer` and :class:`NullTracer`."""

    #: Whether this tracer records anything. Hot paths may branch on this
    #: to skip attribute-dict construction entirely.
    enabled: bool = False

    #: The instrument registry components fetch counters/histograms from.
    telemetry: TelemetryRegistry

    def begin(
        self,
        name: str,
        *,
        category: str = CATEGORY_CONTROL,
        track: str = "main",
        parent: Span | None = None,
        **attrs,
    ) -> Span | None:
        """Open a span now; returns ``None`` when tracing is disabled."""
        raise NotImplementedError

    def end(self, span: Span | None, **attrs) -> None:
        """Close ``span`` now, folding ``attrs`` in. ``None`` is a no-op
        so call sites need no disabled-tracing branch."""
        raise NotImplementedError

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        category: str = CATEGORY_CONTROL,
        track: str = "main",
        **attrs,
    ) -> None:
        """Record a completed span retroactively with explicit times."""
        raise NotImplementedError

    def instant(
        self,
        name: str,
        *,
        category: str = CATEGORY_CONTROL,
        track: str = "main",
        **attrs,
    ) -> None:
        """Record a zero-duration marker at the current simulated time."""
        raise NotImplementedError


class NullTracer(Tracer):
    """The disabled-tracing fast path: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:
        self.telemetry = NullTelemetry()

    def begin(self, name, *, category=CATEGORY_CONTROL, track="main",
              parent=None, **attrs):
        return None

    def end(self, span, **attrs):
        pass

    def record(self, name, start, end, *, category=CATEGORY_CONTROL,
               track="main", **attrs):
        pass

    def instant(self, name, *, category=CATEGORY_CONTROL, track="main",
                **attrs):
        pass


#: Process-wide shared null tracer: the default wherever one is threaded.
NULL_TRACER = NullTracer()


class SimTracer(Tracer):
    """Live tracer bound to a clock.

    Historically always a :class:`~repro.simulation.simulator.Simulator`;
    any :class:`~repro.simulation.clock.Clock` works — the tracer only
    reads ``now``. The live serving runtime passes the wall view of an
    :class:`~repro.simulation.wallclock.AsyncioClock` so live-mode spans
    carry *wall-clock* timestamps (only a readable ``now`` is required;
    the tracer never schedules).

    Spans land in :attr:`spans` in completion order (open spans are
    tracked separately and flushed by :meth:`close_open_spans` at the end
    of a run so in-flight work is never silently dropped).
    """

    enabled = True

    def __init__(self, sim: Clock) -> None:
        self.sim = sim
        self.telemetry = TelemetryRegistry()
        self.spans: list[Span] = []
        self._open: dict[int, Span] = {}

    @property
    def clock(self) -> Clock:
        """The time source spans are stamped against (alias of ``sim``)."""
        return self.sim

    # ------------------------------------------------------------------
    # Span API
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        *,
        category: str = CATEGORY_CONTROL,
        track: str = "main",
        parent: Span | None = None,
        **attrs,
    ) -> Span:
        span = Span(
            name=name,
            start=self.sim.now,
            category=category,
            track=track,
            attrs=attrs,
            parent_id=parent.span_id if parent is not None else 0,
        )
        self._open[span.span_id] = span
        return span

    def end(self, span: Span | None, **attrs) -> None:
        if span is None:
            return
        if self._open.pop(span.span_id, None) is None:
            raise ObservabilityError(f"span ended twice or never begun: {span!r}")
        span.end = self.sim.now
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        category: str = CATEGORY_CONTROL,
        track: str = "main",
        **attrs,
    ) -> None:
        if end < start:
            raise ObservabilityError(
                f"span {name!r} ends before it starts: [{start}, {end}]"
            )
        self.spans.append(
            Span(
                name=name,
                start=start,
                end=end,
                category=category,
                track=track,
                attrs=attrs,
            )
        )

    def instant(
        self,
        name: str,
        *,
        category: str = CATEGORY_CONTROL,
        track: str = "main",
        **attrs,
    ) -> None:
        now = self.sim.now
        self.spans.append(
            Span(
                name=name,
                start=now,
                end=now,
                category=category,
                track=track,
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------
    # Run finalization / introspection
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> tuple[Span, ...]:
        """Spans begun but not yet ended (snapshot)."""
        return tuple(self._open.values())

    def close_open_spans(self, **attrs) -> int:
        """Force-close every open span at the current time (end of run).

        Marks them ``truncated=True`` so exports distinguish spans cut
        off by run end from naturally-completed ones. Returns the count.
        """
        count = 0
        for span in list(self._open.values()):
            self.end(span, truncated=True, **attrs)
            count += 1
        return count

    def spans_named(self, name: str) -> list[Span]:
        """All recorded spans with ``name`` (test/analysis helper)."""
        return [s for s in self.spans if s.name == name]
