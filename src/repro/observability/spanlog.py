"""Serialised span logs: the picklable trace payload for worker fan-out.

When an experiment runs inside a worker process (``repro.parallel``), the
live :class:`~repro.observability.tracer.SimTracer` — bound to a
``Simulator`` and full of platform closures — cannot cross the process
boundary. What crosses instead is a *span log*: a list of plain JSON-safe
dicts (the exact rows :func:`~repro.observability.export.write_span_jsonl`
writes) plus a frozen snapshot of the telemetry registry.

Span ids are **normalised** during export: spans are renumbered ``1..N``
in recorded order and ``parent_id`` links are remapped. The live tracer
draws ids from a process-global counter, so the raw ids depend on how many
spans earlier runs in the same process happened to record; normalising
makes the log a pure function of the simulated run, which is what lets the
parallel/serial equivalence suite compare :func:`span_log_digest` values
byte for byte.

:class:`DetachedTrace` re-attaches a span log in the parent process. It
duck-types the pieces of ``SimTracer`` the exporters and analysis helpers
consume (``.spans``, ``.telemetry``, ``.spans_named``), so
``write_chrome_trace`` / ``write_span_jsonl`` / ``text_summary`` and the
rollup work identically on results that came back from a worker.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.observability.span import Span

#: Fields of one span-log row, in canonical order.
SPAN_LOG_FIELDS = (
    "span_id",
    "parent_id",
    "name",
    "category",
    "track",
    "start",
    "end",
    "attrs",
)


def json_safe_attrs(attrs: dict) -> dict:
    """Attribute dict with non-JSON values stringified (e.g. Geometry)."""
    safe = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, (list, tuple)):
            safe[key] = [
                v if isinstance(v, (str, int, float, bool)) else str(v)
                for v in value
            ]
        else:
            safe[key] = str(value)
    return safe


def spans_to_log(spans: list[Span]) -> list[dict]:
    """Serialise ``spans`` into normalised JSON-safe span-log rows.

    Ids are renumbered ``1..N`` in list order; parent links to spans
    outside the list collapse to 0 (root).
    """
    id_map = {span.span_id: index for index, span in enumerate(spans, start=1)}
    log = []
    for index, span in enumerate(spans, start=1):
        log.append(
            {
                "span_id": index,
                "parent_id": id_map.get(span.parent_id, 0),
                "name": span.name,
                "category": span.category,
                "track": span.track,
                "start": span.start,
                "end": span.start if span.end is None else span.end,
                "attrs": json_safe_attrs(span.attrs),
            }
        )
    return log


def spans_from_log(log: list[dict]) -> list[Span]:
    """Rebuild :class:`Span` objects from span-log rows.

    The rebuilt spans keep the normalised ids from the log (they do not
    draw from the process-global id counter).
    """
    return [
        Span(
            name=row["name"],
            start=row["start"],
            end=row["end"],
            category=row["category"],
            track=row["track"],
            attrs=dict(row["attrs"]),
            span_id=row["span_id"],
            parent_id=row["parent_id"],
        )
        for row in log
    ]


def span_log_digest(log: list[dict]) -> str:
    """SHA-256 over the canonical JSON rendering of a span log.

    Two runs that produced identical simulated traces have identical
    digests regardless of which process (or worker) recorded them.
    """
    payload = "\n".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) for row in log
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def read_span_jsonl(path: str | Path) -> list[dict]:
    """Load span-log rows from a JSONL file written by ``write_span_jsonl``."""
    rows = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen scalar aggregates of one histogram (picklable)."""

    name: str
    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        """Mean of observed values (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")


class TelemetrySnapshot:
    """Read-only view of a telemetry registry's final state.

    Mirrors the introspection half of
    :class:`~repro.observability.telemetry.TelemetryRegistry`
    (``counters()`` / ``histograms()``) over plain data.
    """

    def __init__(
        self,
        counters: dict[str, int] | None = None,
        histograms: dict[str, HistogramSnapshot] | None = None,
    ) -> None:
        self._counters = dict(counters or {})
        self._histograms = dict(histograms or {})

    @classmethod
    def from_registry(cls, registry) -> "TelemetrySnapshot":
        """Freeze a live registry's counters and histograms."""
        histograms = {
            name: HistogramSnapshot(
                name=hist.name,
                count=hist.count,
                total=hist.total,
                minimum=hist.minimum,
                maximum=hist.maximum,
            )
            for name, hist in registry.histograms().items()
        }
        return cls(registry.counters(), histograms)

    def counters(self) -> dict[str, int]:
        """Snapshot of every counter's value."""
        return dict(self._counters)

    def histograms(self) -> dict[str, HistogramSnapshot]:
        """The frozen histograms by name."""
        return dict(self._histograms)


class DetachedTrace:
    """A span log re-attached in the parent process.

    Provides the subset of the ``SimTracer`` surface the exporters and
    analysis helpers use, backed by plain data. ``spans`` are rebuilt
    lazily (and dropped from the pickled state, so only the span-log rows
    cross process boundaries).
    """

    enabled = True

    def __init__(
        self,
        span_log: list[dict],
        telemetry: TelemetrySnapshot | None = None,
    ) -> None:
        self.span_log = span_log
        self.telemetry = telemetry if telemetry is not None else TelemetrySnapshot()
        self._spans: list[Span] | None = None

    @classmethod
    def from_tracer(cls, tracer) -> "DetachedTrace":
        """Detach a live ``SimTracer``'s spans + telemetry."""
        return cls(
            spans_to_log(tracer.spans),
            TelemetrySnapshot.from_registry(tracer.telemetry),
        )

    @property
    def spans(self) -> list[Span]:
        """The rebuilt :class:`Span` objects (cached after first access)."""
        if self._spans is None:
            self._spans = spans_from_log(self.span_log)
        return self._spans

    def spans_named(self, name: str) -> list[Span]:
        """All spans with ``name`` (parity with ``SimTracer``)."""
        return [s for s in self.spans if s.name == name]

    def digest(self) -> str:
        """Digest of the underlying span log (see :func:`span_log_digest`)."""
        return span_log_digest(self.span_log)

    def __getstate__(self):
        return {"span_log": self.span_log, "telemetry": self.telemetry}

    def __setstate__(self, state):
        self.span_log = state["span_log"]
        self.telemetry = state["telemetry"]
        self._spans = None

    def __len__(self) -> int:
        return len(self.span_log)
