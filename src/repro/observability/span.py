"""Span model: the unit of tracing.

A :class:`Span` is a named interval of simulated time with attributes.
Spans form the complete lifecycle record of every request flowing through
the platform (``gateway.admit`` → ``queue.wait`` → ``batch.form`` →
``slice.execute`` → ``complete``/``slo_violation``) and of every
control-plane action (reconfiguration, autoscaling, procurement, spot
eviction). Zero-duration spans (``start == end``) model instant events.

Spans carry a ``category`` (which exporters use to pick a rendering —
request-lifecycle spans overlap freely and become Perfetto *async*
events; control-plane spans sit on per-track timelines) and a ``track``
(the named timeline they render on, e.g. ``"requests"``, ``"reconfig"``,
``"node/vm3"``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Request-lifecycle spans; exported as async (overlapping) events keyed
#: by the request/batch id in their attributes.
CATEGORY_REQUEST = "request"
#: Control-plane spans (reconfiguration, autoscaling, procurement, spot).
CATEGORY_CONTROL = "control"
#: GPU-substrate spans (MIG reconfiguration downtime, slice activity).
CATEGORY_GPU = "gpu"
#: Run-level markers (run start/end, warmup boundary).
CATEGORY_RUN = "run"
#: Injected faults (node crashes, slow slices, start failures, net delay).
CATEGORY_FAULT = "fault"
#: Runtime-audit findings (conservation-invariant violations).
CATEGORY_AUDIT = "audit"
#: Tenant-plane events (admission rejections, quota/fairness decisions).
CATEGORY_TENANT = "tenant"
#: Pipeline workflow lifecycle (workflow admit, stage release, complete).
CATEGORY_PIPELINE = "pipeline"

_span_ids = itertools.count(1)


def reset_ids() -> None:
    """Restart span numbering (fresh id space per experiment run)."""
    global _span_ids
    _span_ids = itertools.count(1)


@dataclass
class Span:
    """One named, attributed interval of simulated time.

    ``end`` is ``None`` while the span is open; :meth:`SimTracer.end`
    closes it. ``parent_id`` links nested spans (0 means root).
    """

    name: str
    start: float
    category: str = CATEGORY_CONTROL
    track: str = "main"
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    span_id: int = field(default_factory=lambda: next(_span_ids))
    parent_id: int = 0

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def closed(self) -> bool:
        """Whether the span has been ended."""
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = f"[{self.start:.6f}, {self.end:.6f}]" if self.closed else f"[{self.start:.6f}, ...)"
        return f"Span(#{self.span_id} {self.name!r} {when} {self.track})"
