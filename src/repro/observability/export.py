"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON, JSONL, text.

The Chrome trace-event format (also read by ``ui.perfetto.dev``) is the
interchange target: one JSON object with a ``traceEvents`` list. The
mapping from our span model:

- Request-lifecycle spans (category ``"request"``) overlap freely, so
  they become legacy *async* event pairs (``ph: "b"`` / ``ph: "e"``)
  keyed by the span's correlation id (its ``request_id`` / ``batch_id``
  attribute) — Perfetto renders each request's chain as one async track
  group without requiring stack discipline.
- Control-plane / GPU / run spans become *complete* events (``ph: "X"``)
  on the thread assigned to their ``track`` — e.g. reconfigurations on
  ``reconfig``, spot drains on ``spot``, each labelled via thread-name
  metadata events so they appear as their own named tracks in the UI.
- Zero-duration spans become *instant* events (``ph: "i"``).

Timestamps are microseconds of simulated time (the format's unit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.observability.span import CATEGORY_REQUEST, Span
from repro.observability.spanlog import json_safe_attrs as _json_safe
from repro.observability.spanlog import spans_to_log

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.spanlog import DetachedTrace
    from repro.observability.tracer import SimTracer

    #: Anything with ``.spans`` and ``.telemetry`` — a live tracer or a
    #: span log re-attached after worker fan-out.
    TraceLike = Union[SimTracer, DetachedTrace]
else:
    TraceLike = object

#: Synthetic process id for the single simulated "process".
_PID = 1

#: Attribute keys used (in order) to correlate async request events.
_CORRELATION_KEYS = ("request_id", "batch_id", "correlation_id")


def _usec(seconds: float) -> float:
    return seconds * 1e6


def _correlation_id(span: Span) -> str:
    for key in _CORRELATION_KEYS:
        value = span.attrs.get(key)
        if value is not None:
            return f"{key}:{value}"
    return f"span:{span.span_id}"


def to_trace_events(tracer: TraceLike) -> list[dict]:
    """Flatten a tracer's spans into Chrome ``trace_event`` dicts."""
    events: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro simulation"},
        }
    ]
    tids: dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid

    for span in tracer.spans:
        args = _json_safe(span.attrs)
        base = {
            "name": span.name,
            "cat": span.category,
            "pid": _PID,
            "tid": tid_for(span.track),
            "args": args,
        }
        if span.category == CATEGORY_REQUEST and span.duration > 0:
            cid = _correlation_id(span)
            events.append(
                {**base, "ph": "b", "id": cid, "ts": _usec(span.start)}
            )
            events.append(
                {**base, "ph": "e", "id": cid, "ts": _usec(span.end)}
            )
        elif span.duration > 0:
            events.append(
                {
                    **base,
                    "ph": "X",
                    "ts": _usec(span.start),
                    "dur": _usec(span.duration),
                }
            )
        else:
            events.append(
                {**base, "ph": "i", "ts": _usec(span.start), "s": "t"}
            )
    return events


def write_chrome_trace(tracer: TraceLike, path: str | Path) -> Path:
    """Write the Perfetto-loadable ``trace_event`` JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "traceEvents": to_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.observability",
            "spans": len(tracer.spans),
            "counters": tracer.telemetry.counters(),
        },
    }
    with path.open("w") as handle:
        json.dump(document, handle)
    return path


def write_span_jsonl(tracer: TraceLike, path: str | Path) -> Path:
    """Write one JSON object per span (machine-readable span log).

    Span ids are normalised (renumbered ``1..N`` in recorded order, parent
    links remapped) so the file is a pure function of the simulated run —
    a worker-side export and a parent-side export of the same run are
    byte-identical. See :mod:`repro.observability.spanlog`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for row in spans_to_log(tracer.spans):
            handle.write(json.dumps(row))
            handle.write("\n")
    return path


def text_summary(tracer: TraceLike) -> str:
    """Human-readable rollup: per-span-name counts/durations + counters."""
    by_name: dict[str, list[Span]] = {}
    for span in tracer.spans:
        by_name.setdefault(span.name, []).append(span)
    lines = ["span name                  count    total_s     mean_ms"]
    for name in sorted(by_name):
        spans = by_name[name]
        total = sum(s.duration for s in spans)
        mean_ms = 1000.0 * total / len(spans)
        lines.append(f"{name:<25s} {len(spans):>6d} {total:>10.3f} {mean_ms:>11.3f}")
    counters = tracer.telemetry.counters()
    if counters:
        lines.append("")
        lines.append("counter                                value")
        for name, value in counters.items():
            lines.append(f"{name:<36s} {value:>8d}")
    histograms = tracer.telemetry.histograms()
    if histograms:
        lines.append("")
        lines.append("histogram                   count        mean         max")
        for name in sorted(histograms):
            hist = histograms[name]
            if hist.count:
                lines.append(
                    f"{name:<25s} {hist.count:>8d} {hist.mean:>11.4f} "
                    f"{hist.maximum:>11.4f}"
                )
    return "\n".join(lines)
