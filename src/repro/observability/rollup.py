"""Trace-driven flamegraph rollup: per-track/per-name self-time totals.

Answers "where did this run's simulated time go?" without opening
Perfetto: every span's *self time* (its duration minus the durations of
its direct children) is aggregated per ``(track, name)``, so queueing vs
execution vs reconfiguration downtime is directly attributable from the
span log.

Works on live tracers, re-attached :class:`DetachedTrace` payloads, span
dict rows, or a JSONL span-log file — all of which carry the
``parent_id`` links the self-time computation walks. Exposed on the CLI
as ``python -m repro trace <experiment> --rollup``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.observability.span import Span
from repro.observability.spanlog import read_span_jsonl, spans_from_log


@dataclass(frozen=True)
class RollupRow:
    """Aggregated timing for one ``(track, name)`` span group."""

    track: str
    name: str
    count: int
    total_s: float
    self_s: float

    @property
    def mean_ms(self) -> float:
        """Mean span duration in milliseconds."""
        return 1000.0 * self.total_s / self.count if self.count else 0.0


def rollup_spans(spans: list[Span]) -> list[RollupRow]:
    """Aggregate ``spans`` into per-track/per-name self-time rows.

    Self time is ``duration - sum(direct children durations)``, clamped at
    zero (children may overlap or outlive a truncated parent). Spans whose
    ``parent_id`` is unknown count as roots. Rows come back sorted by
    descending self time, then track/name for determinism.
    """
    child_time: dict[int, float] = {}
    for span in spans:
        if span.parent_id:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration
            )
    groups: dict[tuple[str, str], list[float]] = {}
    for span in spans:
        duration = span.duration
        self_time = duration - child_time.get(span.span_id, 0.0)
        if self_time < 0.0:
            self_time = 0.0
        entry = groups.get((span.track, span.name))
        if entry is None:
            groups[(span.track, span.name)] = [1, duration, self_time]
        else:
            entry[0] += 1
            entry[1] += duration
            entry[2] += self_time
    rows = [
        RollupRow(track=track, name=name, count=int(count), total_s=total, self_s=self_s)
        for (track, name), (count, total, self_s) in groups.items()
    ]
    rows.sort(key=lambda r: (-r.self_s, r.track, r.name))
    return rows


def rollup_from_log(log: list[dict]) -> list[RollupRow]:
    """Rollup from span-log dict rows (worker payloads, parsed JSONL)."""
    return rollup_spans(spans_from_log(log))


def rollup_from_jsonl(path: str | Path) -> list[RollupRow]:
    """Rollup straight from a JSONL span-log file."""
    return rollup_from_log(read_span_jsonl(path))


def format_rollup(rows: list[RollupRow], *, limit: int | None = None) -> str:
    """Fixed-width text rendering of rollup rows (CLI output).

    ``limit`` truncates to the top-N self-time rows, with a trailing line
    noting how many were folded — never silently.
    """
    total_self = sum(r.self_s for r in rows) or 1.0
    shown = rows if limit is None else rows[:limit]
    lines = [
        "track              span name                  count    total_s     self_s  self_%"
    ]
    for row in shown:
        lines.append(
            f"{row.track:<18s} {row.name:<25s} {row.count:>6d} "
            f"{row.total_s:>10.3f} {row.self_s:>10.3f} {100.0 * row.self_s / total_self:>6.1f}"
        )
    if limit is not None and len(rows) > limit:
        folded = len(rows) - limit
        folded_self = sum(r.self_s for r in rows[limit:])
        lines.append(
            f"... {folded} more groups folded ({folded_self:.3f}s self time)"
        )
    return "\n".join(lines)
