"""Telemetry registry: counters, gauges, and histograms.

Instruments are cheap by design — components fetch their instrument
objects *once* at construction time and call ``inc``/``observe`` on the
hot path. When tracing is disabled the registry hands out shared no-op
instruments, so a disabled platform pays exactly one no-op method call
per telemetry point (the <5% overhead budget of the fig5 bench).

Gauges are pull-based: a component registers a zero-argument callable
and the :class:`TelemetrySampler` (a :class:`PeriodicProcess`) samples
every gauge on a fixed interval into a time series. Sampling only
*reads* simulation state — it never touches RNG streams or mutates
components — so enabling telemetry cannot perturb a run's results.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ObservabilityError
from repro.simulation.processes import PeriodicProcess
from repro.simulation.simulator import Simulator


class Counter:
    """A monotonically-increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Histogram:
    """Streaming summary of observed values (count/sum/min/max).

    Deliberately stores only scalar aggregates, not samples — histograms
    sit on per-request paths and must stay O(1) in memory.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of observed values (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")


class _NullCounter(Counter):
    """Shared no-op counter handed out by :class:`NullTelemetry`."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullHistogram(Histogram):
    """Shared no-op histogram handed out by :class:`NullTelemetry`."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class TelemetryRegistry:
    """Names → instruments. One registry per tracer."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    # Instrument access (idempotent: same name → same object)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def register_gauge(self, name: str, source: Callable[[], float]) -> None:
        """Register a pull-based gauge; re-registering a name replaces it
        (nodes rebuild their gauges when they are replaced after eviction)."""
        self._gauges[name] = source

    def unregister_gauge(self, name: str) -> None:
        """Drop a gauge (no-op when absent — retired nodes race sampling)."""
        self._gauges.pop(name, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Snapshot of every counter's value."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> dict[str, Histogram]:
        """The registered histograms by name."""
        return dict(self._histograms)

    def sample_gauges(self) -> dict[str, float]:
        """Evaluate every registered gauge right now."""
        return {name: float(fn()) for name, fn in sorted(self._gauges.items())}


class NullTelemetry(TelemetryRegistry):
    """Registry variant whose instruments are all no-ops.

    ``counter``/``histogram`` return process-wide shared null instruments
    regardless of name, so disabled telemetry allocates nothing per call
    site beyond the dictionary-free attribute lookups.
    """

    _COUNTER = _NullCounter("null")
    _HISTOGRAM = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def histogram(self, name: str) -> Histogram:
        return self._HISTOGRAM

    def register_gauge(self, name: str, source: Callable[[], float]) -> None:
        pass

    def sample_gauges(self) -> dict[str, float]:
        return {}


class TelemetrySampler:
    """Periodically snapshot every gauge into a time series.

    The sampler is a read-only observer: its tick evaluates gauges and
    appends ``(now, {name: value})`` to :attr:`samples`. It schedules its
    own events on the simulator, which shifts event sequence numbers but
    never the *relative* order of pre-existing events — determinism of
    the simulated system is preserved (asserted by the determinism
    regression test).
    """

    def __init__(
        self,
        sim: Simulator,
        registry: TelemetryRegistry,
        *,
        interval: float = 5.0,
    ) -> None:
        if interval <= 0:
            raise ObservabilityError("sampler interval must be positive")
        self.registry = registry
        self.samples: list[tuple[float, dict[str, float]]] = []
        self._sim = sim
        self._process = PeriodicProcess(
            sim, interval, self._tick, label="telemetry-sampler"
        )

    def start(self) -> None:
        """Arm the sampling loop."""
        self._process.start()

    def stop(self) -> None:
        """Disarm the sampling loop."""
        self._process.stop()

    def _tick(self) -> None:
        self.samples.append((self._sim.now, self.registry.sample_gauges()))
