"""The 12 vision (image classification) workloads of the paper (Section 5).

All use batch size 128 (ImageNet-1k in the paper). Latencies sit in the
paper's 50–200 ms band on the full GPU; memory footprints span ~2–14 GB per
batch; FBRs split the set into Low-Interference (LI) and High-Interference
(HI) models per Figure 3. Calibration anchors:

- *DPN 92* has the largest footprint among the primary vision models — up
  to 2.74× that of the rotating BE models in Figure 7's demonstration.
- *ShuffleNet V2* is "barely affected (<2%) by resource deficiency" on the
  slices Naïve Slicing uses (Section 6.2), hence its near-zero
  sensitivities.
- *Simplified DLA* serves 500 rps at batch 128 in the Section 2.2
  motivation experiment and behaves as an HI model there.
"""

from __future__ import annotations

from repro.workloads.profile import Domain, InterferenceCategory, ModelProfile

_V = Domain.VISION
_LI = InterferenceCategory.LI
_HI = InterferenceCategory.HI

#: Batch size used for every vision workload (paper Section 5).
VISION_BATCH_SIZE = 128

VISION_MODELS: tuple[ModelProfile, ...] = (
    ModelProfile(
        name="resnet50", display_name="ResNet 50", domain=_V, category=_HI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.110, memory_gb=8.0,
        fbr=0.62, compute_sensitivity=0.30, bandwidth_sensitivity=0.10,
    ),
    ModelProfile(
        name="googlenet", display_name="GoogleNet", domain=_V, category=_LI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.070, memory_gb=4.0,
        fbr=0.38, compute_sensitivity=0.15, bandwidth_sensitivity=0.06,
    ),
    ModelProfile(
        name="densenet121", display_name="DenseNet 121", domain=_V, category=_HI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.130, memory_gb=9.0,
        fbr=0.60, compute_sensitivity=0.28, bandwidth_sensitivity=0.12,
    ),
    ModelProfile(
        name="dpn92", display_name="DPN 92", domain=_V, category=_HI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.160, memory_gb=11.0,
        fbr=0.66, compute_sensitivity=0.35, bandwidth_sensitivity=0.12,
    ),
    ModelProfile(
        name="vgg19", display_name="VGG 19", domain=_V, category=_HI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.150, memory_gb=10.0,
        fbr=0.64, compute_sensitivity=0.32, bandwidth_sensitivity=0.10,
    ),
    ModelProfile(
        name="resnet18", display_name="ResNet 18", domain=_V, category=_LI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.055, memory_gb=3.0,
        fbr=0.35, compute_sensitivity=0.12, bandwidth_sensitivity=0.05,
    ),
    ModelProfile(
        name="mobilenet", display_name="MobileNet", domain=_V, category=_LI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.050, memory_gb=2.0,
        fbr=0.30, compute_sensitivity=0.10, bandwidth_sensitivity=0.04,
    ),
    ModelProfile(
        name="mobilenet_v2", display_name="MobileNet V2", domain=_V, category=_LI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.055, memory_gb=2.5,
        fbr=0.32, compute_sensitivity=0.10, bandwidth_sensitivity=0.04,
    ),
    ModelProfile(
        name="senet18", display_name="SENet 18", domain=_V, category=_LI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.065, memory_gb=3.5,
        fbr=0.38, compute_sensitivity=0.12, bandwidth_sensitivity=0.05,
    ),
    ModelProfile(
        name="shufflenet_v2", display_name="ShuffleNet V2", domain=_V, category=_LI,
        batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.050, memory_gb=4.0,
        fbr=0.28, compute_sensitivity=0.015, bandwidth_sensitivity=0.005,
    ),
    ModelProfile(
        name="efficientnet_b0", display_name="EfficientNet-B0", domain=_V,
        category=_LI, batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.075,
        memory_gb=3.0, fbr=0.40, compute_sensitivity=0.15,
        bandwidth_sensitivity=0.06,
    ),
    ModelProfile(
        name="simplified_dla", display_name="Simplified DLA", domain=_V,
        category=_HI, batch_size=VISION_BATCH_SIZE, solo_latency_7g=0.100,
        memory_gb=6.0, fbr=0.56, compute_sensitivity=0.25,
        bandwidth_sensitivity=0.10,
    ),
)
