"""Offline profiling: recovering FBR and RDF from observed executions.

Section 3 of the paper explains how PROTEAN obtains its model inputs:

- *RDF* "can be calculated by finding the required ratio of execution times
  on the concerned slice" — i.e. measure solo latency on the slice and on
  7g and divide;
- *FBR* "can also be estimated by averaging the values obtained from
  solving the linear equations derived from Equation 1 for multiple
  co-locations".

This module reproduces that pipeline against the simulated GPU substrate:
it runs synthetic co-location experiments on a :class:`GPUSlice`, observes
the slowdowns, and solves for the FBRs by least squares. It exists both as
a faithfulness check (the recovered values must match the ground-truth
profiles) and as the tool a user would run to profile *new* models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.gpu.engine import GPUSlice, ShareMode, SliceJob
from repro.gpu.mig import SliceKind, profile as mig_profile
from repro.simulation import Simulator
from repro.workloads.profile import ModelProfile


@dataclass(frozen=True)
class CoLocationMeasurement:
    """One co-location experiment: who ran together and the observed factor.

    ``slowdown_factor`` is ``T_observed / Solo_on_slice`` for the subject
    job — exactly the ``max{Σ FBR, 1}`` term of Eq. 1 when every job in the
    group runs for the whole measurement window.
    """

    subject: str
    co_runners: tuple[str, ...]
    slowdown_factor: float


def measure_solo_latency(
    model: ModelProfile, slice_kind: SliceKind | str = SliceKind.G7
) -> float:
    """Run one batch of ``model`` alone on a fresh slice; return its latency.

    This goes through the real execution engine rather than reading the
    profile directly, so it exercises the same code path a hardware
    profiler would.
    """
    sim = Simulator()
    gpu_slice = GPUSlice(sim, mig_profile(slice_kind), ShareMode.MPS)
    finished: list[float] = []
    job = SliceJob(
        work=model.solo_latency_7g,
        rdf=model.rdf(slice_kind),
        fbr=model.slice_fbr(slice_kind),
        memory_gb=min(model.memory_gb, gpu_slice.profile.memory_gb),
        on_complete=lambda j, t: finished.append(t.execution_time),
    )
    gpu_slice.submit(job)
    sim.run()
    if not finished:
        raise WorkloadError(f"solo measurement of {model.name} never completed")
    return finished[0]


def measure_rdf(model: ModelProfile, slice_kind: SliceKind | str) -> float:
    """Empirical RDF: solo latency on ``slice_kind`` over solo latency on 7g."""
    on_slice = measure_solo_latency(model, slice_kind)
    on_full = measure_solo_latency(model, SliceKind.G7)
    return on_slice / on_full


def measure_co_location(
    subject: ModelProfile,
    co_runners: Sequence[ModelProfile],
    slice_kind: SliceKind | str = SliceKind.G7,
) -> CoLocationMeasurement:
    """Run ``subject`` spatially shared with ``co_runners``; observe Eq. 1.

    The co-runners are given long-running jobs so they stay resident for
    the subject's whole execution (steady-state contention, as Prophet's
    model assumes).
    """
    sim = Simulator()
    gpu_slice = GPUSlice(sim, mig_profile(slice_kind), ShareMode.MPS)
    horizon = 100.0 * subject.solo_latency_7g
    for runner in co_runners:
        gpu_slice.submit(
            SliceJob(
                work=horizon,
                rdf=runner.rdf(slice_kind),
                fbr=runner.slice_fbr(slice_kind),
                memory_gb=0.0,  # keep memory out of the contention picture
                on_complete=lambda j, t: None,
            )
        )
    observed: list[float] = []
    gpu_slice.submit(
        SliceJob(
            work=subject.solo_latency_7g,
            rdf=subject.rdf(slice_kind),
            fbr=subject.slice_fbr(slice_kind),
            memory_gb=0.0,
            on_complete=lambda j, t: observed.append(t.execution_time),
        )
    )
    sim.run(until=2.0 * horizon)
    if not observed:
        raise WorkloadError(
            f"co-location measurement of {subject.name} never completed"
        )
    solo_on_slice = subject.solo_latency(slice_kind)
    return CoLocationMeasurement(
        subject=subject.name,
        co_runners=tuple(r.name for r in co_runners),
        slowdown_factor=observed[0] / solo_on_slice,
    )


def estimate_fbrs(
    models: Sequence[ModelProfile],
    *,
    copies: int = 4,
    slice_kind: SliceKind | str = SliceKind.G7,
) -> dict[str, float]:
    """Recover each model's FBR from co-location experiments (paper §3).

    For every model pair (including self-pairs) we co-locate ``copies``
    long-running instances with one subject instance and record the
    observed slowdown. Measurements where contention saturates
    (factor > 1, so the ``max`` of Eq. 1 is not binding) give one linear
    equation ``(copies + 1 if self else 1)·fbr_subject + copies·fbr_other =
    factor``; the full system is solved by non-negative least squares.

    ``copies`` must be large enough that each pair saturates the bandwidth
    (otherwise the measurement is censored at 1.0 and dropped).
    """
    if copies < 1:
        raise WorkloadError("copies must be >= 1")
    index = {m.name: i for i, m in enumerate(models)}
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    for subject in models:
        for other in models:
            measurement = measure_co_location(
                subject, [other] * copies, slice_kind
            )
            if measurement.slowdown_factor <= 1.0 + 1e-9:
                continue  # censored by the max(·, 1); no information
            row = np.zeros(len(models))
            row[index[subject.name]] += 1.0
            row[index[other.name]] += float(copies)
            rows.append(row)
            rhs.append(measurement.slowdown_factor)
    if not rows:
        raise WorkloadError(
            "no saturating co-locations observed; increase `copies`"
        )
    solution, *_ = np.linalg.lstsq(np.vstack(rows), np.asarray(rhs), rcond=None)
    solution = np.clip(solution, 0.0, None)
    return {m.name: float(solution[index[m.name]]) for m in models}
