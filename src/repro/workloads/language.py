"""The 10 language (sequence classification / generative) workloads.

All use batch size 4 (Large Movie Review Dataset in the paper). These are
the paper's Very-High-Interference (VHI) models: their FBRs are ~59% higher
on average than the vision models (Section 6.2), and the generative GPT
models run up to ~42% higher still (Figure 13). Calibration anchors:

- *ALBERT*: batch execution time grows 2.15× on a 3g slice (Section 2.2's
  motivation experiment), fixing its sensitivities.
- *FlauBERT* and *GPT-2* have high execution latencies relative to queuing
  delays, which is why Molecule(beta) looks comparatively better on them
  (Sections 6.2 "VHI models" and "Modern Generative LLMs").
"""

from __future__ import annotations

from repro.workloads.profile import Domain, InterferenceCategory, ModelProfile

_L = Domain.LANGUAGE
_VHI = InterferenceCategory.VHI

#: Batch size used for every language workload (paper Section 5).
LANGUAGE_BATCH_SIZE = 4

LANGUAGE_MODELS: tuple[ModelProfile, ...] = (
    ModelProfile(
        name="albert", display_name="ALBERT", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.140, memory_gb=6.0,
        fbr=0.66, compute_sensitivity=0.83, bandwidth_sensitivity=0.09,
    ),
    ModelProfile(
        name="bert", display_name="BERT", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.120, memory_gb=7.0,
        fbr=0.70, compute_sensitivity=0.50, bandwidth_sensitivity=0.15,
    ),
    ModelProfile(
        name="deberta", display_name="DeBERTa", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.180, memory_gb=9.0,
        fbr=0.74, compute_sensitivity=0.55, bandwidth_sensitivity=0.18,
    ),
    ModelProfile(
        name="distilbert", display_name="DistilBERT", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.070, memory_gb=4.0,
        fbr=0.62, compute_sensitivity=0.40, bandwidth_sensitivity=0.12,
    ),
    ModelProfile(
        name="flaubert", display_name="FlauBERT", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.190, memory_gb=8.0,
        fbr=0.70, compute_sensitivity=0.50, bandwidth_sensitivity=0.16,
    ),
    ModelProfile(
        name="funnel_transformer", display_name="Funnel-Transformer", domain=_L,
        category=_VHI, batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.150,
        memory_gb=7.5, fbr=0.68, compute_sensitivity=0.48,
        bandwidth_sensitivity=0.14,
    ),
    ModelProfile(
        name="roberta", display_name="RoBERTa", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.130, memory_gb=7.0,
        fbr=0.70, compute_sensitivity=0.50, bandwidth_sensitivity=0.15,
    ),
    ModelProfile(
        name="squeezebert", display_name="SqueezeBERT", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.090, memory_gb=5.0,
        fbr=0.64, compute_sensitivity=0.40, bandwidth_sensitivity=0.12,
    ),
    ModelProfile(
        name="gpt1", display_name="OpenAI GPT-1", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.180, memory_gb=12.0,
        fbr=0.86, compute_sensitivity=0.60, bandwidth_sensitivity=0.20,
        generative=True,
    ),
    ModelProfile(
        name="gpt2", display_name="OpenAI GPT-2", domain=_L, category=_VHI,
        batch_size=LANGUAGE_BATCH_SIZE, solo_latency_7g=0.200, memory_gb=14.0,
        fbr=0.97, compute_sensitivity=0.65, bandwidth_sensitivity=0.22,
        generative=True,
    ),
)
