"""Canonical registry of the paper's 22 inference workloads.

Lookup is by stable snake_case name (``"resnet50"``) or by the paper's
display name (``"ResNet 50"``), case-insensitively. Category helpers expose
the LI/HI/VHI buckets used throughout the evaluation, and
:func:`normalized_fbrs` reproduces the data behind Figure 3.
"""

from __future__ import annotations

from repro.errors import UnknownModelError
from repro.workloads.language import LANGUAGE_MODELS
from repro.workloads.profile import Domain, InterferenceCategory, ModelProfile
from repro.workloads.vision import VISION_MODELS

ALL_MODELS: tuple[ModelProfile, ...] = VISION_MODELS + LANGUAGE_MODELS

_BY_NAME: dict[str, ModelProfile] = {}
for _model in ALL_MODELS:
    _BY_NAME[_model.name] = _model
    _BY_NAME[_model.display_name.lower()] = _model


def get_model(name: str) -> ModelProfile:
    """Return the profile for ``name`` (registry key or display name).

    Raises :class:`UnknownModelError` for unrecognized names, listing the
    valid registry keys.
    """
    model = _BY_NAME.get(name.lower().strip())
    if model is None:
        known = ", ".join(sorted(m.name for m in ALL_MODELS))
        raise UnknownModelError(f"unknown model {name!r}; known models: {known}")
    return model


def model_names() -> tuple[str, ...]:
    """All registry keys, in definition order."""
    return tuple(m.name for m in ALL_MODELS)


def vision_models() -> tuple[ModelProfile, ...]:
    """The 12 image-classification workloads."""
    return tuple(m for m in ALL_MODELS if m.domain is Domain.VISION)


def language_models() -> tuple[ModelProfile, ...]:
    """The 10 LLM workloads (BERT family + GPT-1/2)."""
    return tuple(m for m in ALL_MODELS if m.domain is Domain.LANGUAGE)


def generative_models() -> tuple[ModelProfile, ...]:
    """The modern generative LLMs of Figure 13 (GPT-1, GPT-2)."""
    return tuple(m for m in ALL_MODELS if m.generative)


def models_by_category(
    category: InterferenceCategory | str,
) -> tuple[ModelProfile, ...]:
    """All models in one LI/HI/VHI bucket."""
    category = InterferenceCategory(category)
    return tuple(m for m in ALL_MODELS if m.category is category)


def low_interference_models() -> tuple[ModelProfile, ...]:
    """The LI vision models (Fig. 3, yellow bars)."""
    return models_by_category(InterferenceCategory.LI)


def high_interference_models() -> tuple[ModelProfile, ...]:
    """The HI vision models (Fig. 3, orange bars)."""
    return models_by_category(InterferenceCategory.HI)


def very_high_interference_models() -> tuple[ModelProfile, ...]:
    """The VHI language models (Figure 12/13)."""
    return models_by_category(InterferenceCategory.VHI)


def opposite_category(category: InterferenceCategory) -> InterferenceCategory:
    """The paper's BE-model pairing: LI strict ↔ HI best-effort.

    VHI (language) experiments draw BE models from the same VHI pool, so
    VHI maps to itself.
    """
    if category is InterferenceCategory.LI:
        return InterferenceCategory.HI
    if category is InterferenceCategory.HI:
        return InterferenceCategory.LI
    return InterferenceCategory.VHI


def normalized_fbrs() -> dict[str, float]:
    """FBRs of all models normalized to the maximum (the Figure 3 data)."""
    peak = max(m.fbr for m in ALL_MODELS)
    return {m.name: m.fbr / peak for m in ALL_MODELS}
