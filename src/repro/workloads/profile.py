"""Workload (model) profiles.

A :class:`ModelProfile` captures everything the schedulers need to know
about one ML inference model, mirroring what the paper obtains by offline
profiling on hardware (Section 4.3: "prerequisites, such as FBRs, are
estimated through profiling"):

- batch size and the batch's solo execution latency on the full GPU (7g),
  chosen per the paper in the ~50–200 ms band;
- per-batch GPU memory footprint (~2–14 GB across the 22 workloads);
- the Fractional Bandwidth Requirement (FBR) normalized to the full GPU
  (Figure 3), which drives MPS interference via Eq. 1;
- resource-deficiency sensitivities from which the per-slice RDF and solo
  latencies are derived (Eq. 2's RDF term).

Profiles are frozen value objects; the registry (``repro.workloads.registry``)
owns the canonical instances for the paper's 22 models.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.gpu.mig import MIG_PROFILES, SliceKind, SliceProfile
from repro.gpu.slowdown import resource_deficiency_factor, slice_relative_fbr

#: The paper sets strict-request SLOs to 3x the 7g batch execution latency.
DEFAULT_SLO_MULTIPLIER = 3.0


class Domain(str, Enum):
    """Application domain of a workload (paper Section 5)."""

    VISION = "vision"
    LANGUAGE = "language"


class InterferenceCategory(str, Enum):
    """The paper's Low/High/Very-High interference buckets (Fig. 3, §6.2)."""

    LI = "LI"
    HI = "HI"
    VHI = "VHI"


@dataclass(frozen=True)
class ModelProfile:
    """Profiling data for one inference model.

    Attributes
    ----------
    name:
        Stable registry key (lowercase snake_case).
    display_name:
        Human-readable name as printed in the paper.
    domain:
        Vision or language.
    category:
        LI / HI / VHI interference bucket.
    batch_size:
        Requests per served batch (128 for vision, 4 for language).
    solo_latency_7g:
        Batch execution latency, seconds, alone on a full A100.
    memory_gb:
        GPU memory held while a batch executes.
    fbr:
        Fractional Bandwidth Requirement normalized to the full GPU.
    compute_sensitivity / bandwidth_sensitivity:
        Exponents of the RDF power law (see
        :func:`repro.gpu.slowdown.resource_deficiency_factor`).
    generative:
        True for the autoregressive GPT models (Figure 13).
    """

    name: str
    display_name: str
    domain: Domain
    category: InterferenceCategory
    batch_size: int
    solo_latency_7g: float
    memory_gb: float
    fbr: float
    compute_sensitivity: float
    bandwidth_sensitivity: float
    generative: bool = False

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError(f"{self.name}: batch_size must be positive")
        if self.solo_latency_7g <= 0:
            raise ConfigurationError(f"{self.name}: solo_latency_7g must be positive")
        if not 0.0 < self.memory_gb:
            raise ConfigurationError(f"{self.name}: memory_gb must be positive")
        if not 0.0 <= self.fbr <= 1.0:
            raise ConfigurationError(f"{self.name}: fbr must lie in [0, 1]")
        if self.compute_sensitivity < 0 or self.bandwidth_sensitivity < 0:
            raise ConfigurationError(f"{self.name}: sensitivities must be non-negative")

    # ------------------------------------------------------------------
    # Derived per-slice quantities
    # ------------------------------------------------------------------
    def rdf(self, slice_profile: SliceProfile | SliceKind | str) -> float:
        """Resource Deficiency Factor of this model on ``slice_profile``."""
        prof = _resolve(slice_profile)
        return resource_deficiency_factor(
            prof.compute_fraction,
            prof.bandwidth_fraction,
            self.compute_sensitivity,
            self.bandwidth_sensitivity,
        )

    def solo_latency(self, slice_profile: SliceProfile | SliceKind | str) -> float:
        """Solo batch latency on a given slice (``Solo_k`` of Eq. 1)."""
        return self.solo_latency_7g * self.rdf(slice_profile)

    def slice_fbr(
        self, slice_profile: SliceProfile | SliceKind | str, sm_fraction: float = 1.0
    ) -> float:
        """This model's ``bw·sm`` term relative to a slice's bandwidth."""
        prof = _resolve(slice_profile)
        return slice_relative_fbr(
            self.fbr,
            prof.bandwidth_fraction,
            sm_fraction,
            prof.compute_fraction,
        )

    def fits(self, slice_profile: SliceProfile | SliceKind | str) -> bool:
        """Whether one batch of this model fits the slice's memory."""
        return self.memory_gb <= _resolve(slice_profile).memory_gb

    def slo_target(self, multiplier: float = DEFAULT_SLO_MULTIPLIER) -> float:
        """Strict-request SLO deadline, seconds (paper: 3× the 7g latency)."""
        if multiplier <= 0:
            raise ConfigurationError("SLO multiplier must be positive")
        return multiplier * self.solo_latency_7g

    @property
    def is_language_model(self) -> bool:
        """True for the LLM (sequence classification / generative) models."""
        return self.domain is Domain.LANGUAGE


def _resolve(slice_profile: SliceProfile | SliceKind | str) -> SliceProfile:
    if isinstance(slice_profile, SliceProfile):
        return slice_profile
    return MIG_PROFILES[SliceKind(slice_profile)]
