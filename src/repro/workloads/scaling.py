"""Scaled-down workload variants for fast experiments.

The paper drives ~5000 rps into 8 GPUs with batch size 128. Simulating
every request at that scale is wasteful when the dynamics depend only on
*batch-level* quantities (batches per second, per-batch latency/memory).
:func:`scale_model` shrinks a model's batch size by a factor so an
experiment can shrink its request rate by the same factor while keeping
batch arrival rates, batch fill times, execution latencies, and memory
footprints — hence all queueing/interference structure — identical to the
full-scale setup.
"""

from __future__ import annotations

import dataclasses

from repro.errors import WorkloadError
from repro.workloads.profile import ModelProfile


def scale_model(model: ModelProfile, factor: float) -> ModelProfile:
    """Return a copy of ``model`` with ``batch_size`` scaled by ``factor``.

    ``factor = 1.0`` returns the model unchanged (same object). The scaled
    batch size is rounded and floored at 1.
    """
    if factor <= 0:
        raise WorkloadError(f"scale factor must be positive, got {factor}")
    if factor == 1.0:
        return model
    scaled_batch = max(1, round(model.batch_size * factor))
    return dataclasses.replace(model, batch_size=scaled_batch)


def scale_models(
    models: tuple[ModelProfile, ...] | list[ModelProfile], factor: float
) -> tuple[ModelProfile, ...]:
    """Vector version of :func:`scale_model`."""
    return tuple(scale_model(m, factor) for m in models)
