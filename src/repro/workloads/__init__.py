"""The paper's 22 ML inference workloads and the profiling pipeline.

12 vision models (batch 128) and 10 language models (batch 4), each with
calibrated solo latency, memory footprint, FBR, and resource-deficiency
sensitivities. See DESIGN.md for the calibration anchors.
"""

from repro.workloads.language import LANGUAGE_BATCH_SIZE, LANGUAGE_MODELS
from repro.workloads.profile import (
    DEFAULT_SLO_MULTIPLIER,
    Domain,
    InterferenceCategory,
    ModelProfile,
)
from repro.workloads.profiler import (
    CoLocationMeasurement,
    estimate_fbrs,
    measure_co_location,
    measure_rdf,
    measure_solo_latency,
)
from repro.workloads.registry import (
    ALL_MODELS,
    generative_models,
    get_model,
    high_interference_models,
    language_models,
    low_interference_models,
    model_names,
    models_by_category,
    normalized_fbrs,
    opposite_category,
    very_high_interference_models,
    vision_models,
)
from repro.workloads.vision import VISION_BATCH_SIZE, VISION_MODELS

__all__ = [
    "ALL_MODELS",
    "CoLocationMeasurement",
    "DEFAULT_SLO_MULTIPLIER",
    "Domain",
    "InterferenceCategory",
    "LANGUAGE_BATCH_SIZE",
    "LANGUAGE_MODELS",
    "ModelProfile",
    "VISION_BATCH_SIZE",
    "VISION_MODELS",
    "estimate_fbrs",
    "generative_models",
    "get_model",
    "high_interference_models",
    "language_models",
    "low_interference_models",
    "measure_co_location",
    "measure_rdf",
    "measure_solo_latency",
    "model_names",
    "models_by_category",
    "normalized_fbrs",
    "opposite_category",
    "very_high_interference_models",
    "vision_models",
]
