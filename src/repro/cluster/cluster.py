"""Cluster state: the live node set and the GPU-reconfiguration governor.

The paper's cluster is 8 worker nodes plus a manager (Section 5). The
``ReconfigurationGovernor`` enforces the Section 4.4 rule that "only ~30%
of GPUs (on average) are allowed to be reconfigured simultaneously to keep
overall GPU downtime low".
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.cluster.node import NodeState, WorkerNode
from repro.errors import ClusterError

#: Section 4.4: at most ~30% of GPUs may reconfigure at once.
DEFAULT_RECONFIG_FRACTION = 0.3


class ReconfigurationGovernor:
    """Token bucket limiting simultaneous MIG reconfigurations."""

    def __init__(self, cluster_size: int, fraction: float = DEFAULT_RECONFIG_FRACTION):
        if cluster_size < 1:
            raise ClusterError("cluster_size must be >= 1")
        if not 0.0 < fraction <= 1.0:
            raise ClusterError("fraction must lie in (0, 1]")
        self.limit = max(1, math.ceil(cluster_size * fraction))
        self.in_flight = 0

    def try_acquire(self) -> bool:
        """Take a reconfiguration slot if one is free."""
        if self.in_flight >= self.limit:
            return False
        self.in_flight += 1
        return True

    def release(self) -> None:
        """Return a slot after the GPU finished reconfiguring."""
        if self.in_flight <= 0:
            raise ClusterError("governor release without acquire")
        self.in_flight -= 1


class Cluster:
    """The set of worker nodes currently known to the platform."""

    def __init__(self, *, reconfig_fraction: float = DEFAULT_RECONFIG_FRACTION):
        self._nodes: list[WorkerNode] = []
        self._reconfig_fraction = reconfig_fraction
        self._governor: ReconfigurationGovernor | None = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, node: WorkerNode) -> None:
        """Register a (new) worker node."""
        if node in self._nodes:
            raise ClusterError(f"{node.name} already in cluster")
        self._nodes.append(node)
        self._refresh_governor()

    def remove(self, node: WorkerNode) -> None:
        """Deregister a retired node."""
        try:
            self._nodes.remove(node)
        except ValueError as exc:
            raise ClusterError(f"{node.name} not in cluster") from exc
        self._refresh_governor()

    def __iter__(self) -> Iterator[WorkerNode]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> tuple[WorkerNode, ...]:
        """All registered nodes (snapshot)."""
        return tuple(self._nodes)

    @property
    def active_nodes(self) -> tuple[WorkerNode, ...]:
        """Nodes currently accepting new work."""
        return tuple(n for n in self._nodes if n.state is NodeState.ACTIVE)

    @property
    def draining_nodes(self) -> tuple[WorkerNode, ...]:
        """Nodes finishing existing work ahead of an eviction."""
        return tuple(n for n in self._nodes if n.state is NodeState.DRAINING)

    # ------------------------------------------------------------------
    # Reconfiguration governance
    # ------------------------------------------------------------------
    @property
    def governor(self) -> ReconfigurationGovernor:
        """The shared reconfiguration token bucket (sized to the cluster)."""
        if self._governor is None:
            self._refresh_governor()
        assert self._governor is not None
        return self._governor

    def _refresh_governor(self) -> None:
        size = max(1, len(self._nodes))
        in_flight = self._governor.in_flight if self._governor else 0
        self._governor = ReconfigurationGovernor(size, self._reconfig_fraction)
        self._governor.in_flight = in_flight
