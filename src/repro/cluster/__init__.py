"""Cluster substrate: VMs, spot market, pricing, worker nodes."""

from repro.cluster.cluster import (
    DEFAULT_RECONFIG_FRACTION,
    Cluster,
    ReconfigurationGovernor,
)
from repro.cluster.node import NodeState, WorkerNode
from repro.cluster.pricing import (
    AWS,
    AZURE,
    DEFAULT_PRICING,
    GCP,
    GPUS_PER_REFERENCE_INSTANCE,
    PROVIDERS,
    CostMeter,
    ProviderPricing,
    VMTier,
    get_provider,
)
from repro.cluster.spot import (
    AVAILABILITY_LEVELS,
    DEFAULT_CHECK_INTERVAL,
    DEFAULT_NOTICE_SECONDS,
    HIGH_AVAILABILITY,
    LOW_AVAILABILITY,
    MODERATE_AVAILABILITY,
    P_REV_HIGH_AVAILABILITY,
    P_REV_LOW_AVAILABILITY,
    P_REV_MODERATE_AVAILABILITY,
    SpotAvailability,
    SpotMarket,
)
from repro.cluster.vm import VM, VMState

__all__ = [
    "AVAILABILITY_LEVELS",
    "AWS",
    "AZURE",
    "Cluster",
    "CostMeter",
    "DEFAULT_CHECK_INTERVAL",
    "DEFAULT_NOTICE_SECONDS",
    "DEFAULT_PRICING",
    "DEFAULT_RECONFIG_FRACTION",
    "GCP",
    "GPUS_PER_REFERENCE_INSTANCE",
    "HIGH_AVAILABILITY",
    "LOW_AVAILABILITY",
    "MODERATE_AVAILABILITY",
    "NodeState",
    "PROVIDERS",
    "P_REV_HIGH_AVAILABILITY",
    "P_REV_LOW_AVAILABILITY",
    "P_REV_MODERATE_AVAILABILITY",
    "ProviderPricing",
    "ReconfigurationGovernor",
    "SpotAvailability",
    "SpotMarket",
    "VM",
    "VMState",
    "VMTier",
    "WorkerNode",
    "get_provider",
]
