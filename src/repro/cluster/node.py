"""Worker nodes: one VM + one GPU, with drain semantics for evictions.

On receiving a spot eviction notice the node stops accepting new work and
lets running requests finish (Section 4.5: GPU serverless workloads run
for < 1 s, so they complete well within the 30 s notice). If work is still
attached when the eviction lands, it is handed back to the platform for
resubmission elsewhere.
"""

from __future__ import annotations

import itertools
from enum import Enum

from repro.cluster.vm import VM
from repro.errors import NodeUnavailableError
from repro.gpu.device import GPU

_node_ids = itertools.count()


def reset_ids() -> None:
    """Restart node numbering (fresh id space per experiment run)."""
    global _node_ids
    _node_ids = itertools.count()


class NodeState(str, Enum):
    """Lifecycle of a worker node."""

    ACTIVE = "active"
    DRAINING = "draining"
    RETIRED = "retired"


class WorkerNode:
    """A single-GPU worker hosted on one VM."""

    def __init__(self, vm: VM, gpu: GPU, *, name: str = "") -> None:
        self.node_id = next(_node_ids)
        self.name = name or f"node{self.node_id}"
        self.vm = vm
        self.gpu = gpu
        self.state = NodeState.ACTIVE

    @property
    def accepting(self) -> bool:
        """Whether the dispatcher may route new batches here."""
        return self.state is NodeState.ACTIVE

    def ensure_accepting(self) -> None:
        """Raise :class:`NodeUnavailableError` unless the node accepts work."""
        if not self.accepting:
            raise NodeUnavailableError(
                f"{self.name} is {self.state.value}; not accepting work"
            )

    def drain(self) -> None:
        """Stop accepting new work (eviction notice received)."""
        if self.state is NodeState.ACTIVE:
            self.state = NodeState.DRAINING

    def retire(self) -> list[object]:
        """Tear the node down; return payloads of any unfinished jobs.

        The VM is assumed terminated (or about to be) by the caller. Any
        jobs still attached to the GPU — running or pending — are lost
        with the node; their payloads (request batches) are returned so
        the platform can resubmit them.
        """
        if self.state is NodeState.RETIRED:
            return []
        self.state = NodeState.RETIRED
        stranded: list[object] = []
        for gpu_slice in self.gpu.slices:
            for job in gpu_slice.abort_all():
                if job.payload is not None:
                    stranded.append(job.payload)
        return stranded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerNode({self.name}, {self.state.value}, {self.vm.name})"
