"""VM lifecycle: provisioning, running, eviction, termination.

One VM hosts one worker node (paper Section 5: "There is one
spot/on-demand VM per node in the cluster"). The VM object tracks the
billing clock; the cost meter is charged when the VM terminates (or when a
snapshot is taken mid-run).
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Optional

from repro.cluster.pricing import CostMeter, VMTier
from repro.errors import ClusterError
from repro.simulation.simulator import Simulator

_vm_ids = itertools.count()


def reset_ids() -> None:
    """Restart VM numbering (fresh id space per experiment run)."""
    global _vm_ids
    _vm_ids = itertools.count()


class VMState(str, Enum):
    """Lifecycle states of a VM."""

    RUNNING = "running"
    EVICTION_NOTICE = "eviction_notice"
    TERMINATED = "terminated"


class VM:
    """One IaaS virtual machine hosting a worker node."""

    def __init__(self, sim: Simulator, tier: VMTier, meter: CostMeter) -> None:
        self.sim = sim
        self.tier = tier
        self.meter = meter
        self.vm_id = next(_vm_ids)
        self.state = VMState.RUNNING
        self.provisioned_at = sim.now
        self.notice_at: Optional[float] = None
        self.terminated_at: Optional[float] = None
        #: Whether termination came as a crash (no eviction notice).
        self.crashed = False
        self._billed_until = sim.now

    @property
    def name(self) -> str:
        return f"vm{self.vm_id}({self.tier.value})"

    @property
    def running(self) -> bool:
        """True until terminated (eviction notice still counts as running)."""
        return self.state is not VMState.TERMINATED

    @property
    def uptime(self) -> float:
        """Seconds since provisioning (frozen at termination)."""
        end = self.terminated_at if self.terminated_at is not None else self.sim.now
        return end - self.provisioned_at

    def flush_billing(self) -> None:
        """Charge accrued running time to the cost meter."""
        if self.state is VMState.TERMINATED:
            return
        now = self.sim.now
        self.meter.charge(self.tier, now - self._billed_until)
        self._billed_until = now

    def mark_eviction_notice(self) -> None:
        """Record receipt of a spot eviction notice."""
        if self.tier is not VMTier.SPOT:
            raise ClusterError(f"{self.name}: only spot VMs receive notices")
        if self.state is not VMState.RUNNING:
            raise ClusterError(f"{self.name}: notice in state {self.state.value}")
        self.state = VMState.EVICTION_NOTICE
        self.notice_at = self.sim.now

    def terminate(self) -> None:
        """Stop the VM and settle its bill. Idempotent termination is a bug."""
        if self.state is VMState.TERMINATED:
            raise ClusterError(f"{self.name} already terminated")
        self.flush_billing()
        self.state = VMState.TERMINATED
        self.terminated_at = self.sim.now

    def crash(self) -> None:
        """Terminate without notice (hardware/host failure, any tier).

        Unlike a spot eviction there is no warning window: the VM goes
        straight from its current state to TERMINATED. Billing still
        settles — providers charge until the instance stops.
        """
        self.crashed = True
        self.terminate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VM({self.name}, {self.state.value}, up={self.uptime:.1f}s)"
