"""The spot market model: availability, revocation draws, eviction notices.

The paper emulates the spot/on-demand aspect rather than using real spot
VMs (Section 5): revocation notifications are generated "at each worker
node at fixed time intervals based on revocation probability (P_rev)
values derived from [Narayanan et al.]":

- high spot availability:     P_rev = 0
- moderate spot availability: P_rev = 0.354
- low spot availability:      P_rev = 0.708

We model two coupled effects of the same scarcity parameter:

1. *Revocations*: every ``check_interval`` seconds, each registered spot
   VM is revoked with probability ``P_rev``; a notice fires
   ``notice_seconds`` (30–120 s per the providers) before the eviction.
2. *Acquisition*: a new spot VM request succeeds with probability
   ``1 - P_rev`` (scarce capacity is both harder to keep and to get).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cluster.vm import VM, VMState
from repro.cluster.pricing import VMTier
from repro.errors import ClusterError
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.simulation.events import Event
from repro.simulation.processes import PeriodicProcess
from repro.simulation.simulator import Simulator

#: Paper Section 5 revocation probabilities.
P_REV_HIGH_AVAILABILITY = 0.0
P_REV_MODERATE_AVAILABILITY = 0.354
P_REV_LOW_AVAILABILITY = 0.708

#: Minimum warning the three providers give before eviction (Section 2.3).
DEFAULT_NOTICE_SECONDS = 30.0

#: How often each spot VM's revocation coin is flipped.
DEFAULT_CHECK_INTERVAL = 60.0


@dataclass(frozen=True)
class SpotAvailability:
    """Named availability regime (Figure 9's high/medium/low scenarios)."""

    name: str
    revocation_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.revocation_probability <= 1.0:
            raise ClusterError("revocation probability must lie in [0, 1]")


HIGH_AVAILABILITY = SpotAvailability("high", P_REV_HIGH_AVAILABILITY)
MODERATE_AVAILABILITY = SpotAvailability("moderate", P_REV_MODERATE_AVAILABILITY)
LOW_AVAILABILITY = SpotAvailability("low", P_REV_LOW_AVAILABILITY)

AVAILABILITY_LEVELS: dict[str, SpotAvailability] = {
    "high": HIGH_AVAILABILITY,
    "moderate": MODERATE_AVAILABILITY,
    "medium": MODERATE_AVAILABILITY,
    "low": LOW_AVAILABILITY,
}


class SpotMarket:
    """Generates spot acquisitions, revocation notices, and evictions."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        availability: SpotAvailability = HIGH_AVAILABILITY,
        *,
        notice_seconds: float = DEFAULT_NOTICE_SECONDS,
        check_interval: float = DEFAULT_CHECK_INTERVAL,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if notice_seconds < 0:
            raise ClusterError("notice_seconds must be non-negative")
        if check_interval <= 0:
            raise ClusterError("check_interval must be positive")
        self.sim = sim
        self.rng = rng
        self.availability = availability
        self.notice_seconds = notice_seconds
        self.check_interval = check_interval
        self.tracer = tracer
        self._ctr_notices = tracer.telemetry.counter("spot.notices")
        self._ctr_evictions = tracer.telemetry.counter("spot.evictions")
        self._watchers: dict[int, PeriodicProcess] = {}
        self._pending_evictions: dict[int, Event] = {}
        self.notices_issued = 0
        self.evictions = 0
        self.acquisition_attempts = 0
        self.acquisition_failures = 0

    @property
    def p_rev(self) -> float:
        return self.availability.revocation_probability

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def try_acquire_spot(self) -> bool:
        """Attempt to get a new spot VM; succeeds w.p. ``1 - P_rev``."""
        self.acquisition_attempts += 1
        if self.rng.random() < self.p_rev:
            self.acquisition_failures += 1
            return False
        return True

    # ------------------------------------------------------------------
    # Revocation
    # ------------------------------------------------------------------
    def register(
        self,
        vm: VM,
        on_notice: Callable[[VM], None],
        on_eviction: Callable[[VM], None],
    ) -> None:
        """Start revocation draws for a spot ``vm``.

        ``on_notice`` fires when the eviction notice arrives (the VM keeps
        running); ``on_eviction`` fires ``notice_seconds`` later, after
        which the VM is terminated by the caller-facing contract (this
        market terminates it itself just before invoking ``on_eviction``).
        """
        if vm.tier is not VMTier.SPOT:
            raise ClusterError(f"{vm.name} is not a spot VM")
        if vm.vm_id in self._watchers:
            raise ClusterError(f"{vm.name} already registered")

        def draw() -> None:
            if vm.state is not VMState.RUNNING:
                return
            if self.rng.random() < self.p_rev:
                self._issue_notice(vm, on_notice, on_eviction)

        watcher = PeriodicProcess(
            self.sim, self.check_interval, draw, label=f"spot-draw-{vm.name}"
        )
        self._watchers[vm.vm_id] = watcher
        watcher.start()

    def unregister(self, vm: VM) -> None:
        """Stop revocation draws (VM replaced, crashed, or terminated
        voluntarily). Also cancels a pending eviction countdown so a
        notice issued before unregistration cannot evict a retired node."""
        watcher = self._watchers.pop(vm.vm_id, None)
        if watcher is not None:
            watcher.stop()
        pending = self._pending_evictions.pop(vm.vm_id, None)
        if pending is not None:
            self.sim.cancel(pending)

    def _issue_notice(
        self,
        vm: VM,
        on_notice: Callable[[VM], None],
        on_eviction: Callable[[VM], None],
    ) -> None:
        vm.mark_eviction_notice()
        self.notices_issued += 1
        self._ctr_notices.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "spot.notice",
                track="spot",
                vm=vm.name,
                evict_in_s=self.notice_seconds,
            )
        on_notice(vm)

        def evict() -> None:
            self._pending_evictions.pop(vm.vm_id, None)
            watcher = self._watchers.pop(vm.vm_id, None)
            if watcher is not None:
                watcher.stop()
            if vm.state is VMState.TERMINATED:
                # The VM is already gone (voluntary termination or crash):
                # counting an eviction and invoking ``on_eviction`` here
                # would double-retire the node and inflate telemetry.
                return
            vm.terminate()
            self.evictions += 1
            self._ctr_evictions.inc()
            if self.tracer.enabled:
                self.tracer.instant("spot.eviction", track="spot", vm=vm.name)
            on_eviction(vm)

        self._pending_evictions[vm.vm_id] = self.sim.after(
            self.notice_seconds, evict, label=f"evict-{vm.name}"
        )
