"""VM pricing (the paper's Table 3) and cost accounting.

Table 3 lists on-demand and spot hourly prices for an 8×A100 instance at
the three main IaaS providers, averaged across US-east/west. The paper's
cluster has one A100 per worker node, and the evaluation projects cost from
VM running time using *average AWS* pricing (Section 5) — we default to the
same but keep all three providers available.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ClusterError

#: GPUs per the Table 3 reference instance.
GPUS_PER_REFERENCE_INSTANCE = 8


class VMTier(str, Enum):
    """Reliability tier of a VM."""

    ON_DEMAND = "on_demand"
    SPOT = "spot"


@dataclass(frozen=True)
class ProviderPricing:
    """Hourly prices (USD) for one provider's 8×A100 instance (Table 3)."""

    provider: str
    on_demand_hourly: float
    spot_hourly: float

    def __post_init__(self) -> None:
        if self.on_demand_hourly <= 0 or self.spot_hourly <= 0:
            raise ClusterError("prices must be positive")
        if self.spot_hourly >= self.on_demand_hourly:
            raise ClusterError("spot must be cheaper than on-demand")

    @property
    def savings_fraction(self) -> float:
        """Spot discount relative to on-demand (Table 3's last column)."""
        return 1.0 - self.spot_hourly / self.on_demand_hourly

    def hourly(self, tier: VMTier) -> float:
        """Hourly price of the full 8-GPU instance for ``tier``."""
        if tier is VMTier.ON_DEMAND:
            return self.on_demand_hourly
        return self.spot_hourly

    def per_gpu_hourly(self, tier: VMTier) -> float:
        """Hourly price prorated to one single-GPU worker node."""
        return self.hourly(tier) / GPUS_PER_REFERENCE_INSTANCE

    def to_dict(self) -> dict:
        """JSON-safe representation (one Table 3 row, savings recomputed)."""
        return {
            "provider": self.provider,
            "on_demand_hourly": self.on_demand_hourly,
            "spot_hourly": self.spot_hourly,
            "savings_fraction": self.savings_fraction,
        }


#: Table 3 — on-demand and spot hourly pricing for an 8×A100 instance.
AWS = ProviderPricing("AWS", on_demand_hourly=32.7726, spot_hourly=9.8318)
AZURE = ProviderPricing(
    "Microsoft Azure", on_demand_hourly=32.7700, spot_hourly=18.0235
)
GCP = ProviderPricing("Google Cloud", on_demand_hourly=30.0846, spot_hourly=8.8147)

PROVIDERS: dict[str, ProviderPricing] = {
    "aws": AWS,
    "azure": AZURE,
    "gcp": GCP,
}

#: Pricing used by the paper's cost projections (Section 5: "average AWS
#: spot and on-demand pricing").
DEFAULT_PRICING = AWS


#: Per-GPU hourly (on-demand, spot) rates by device class, USD. The A100
#: rows are the Table 3 AWS instance prorated to one GPU; the other
#: classes are averaged US-east/west AWS list prices for the closest
#: single-GPU instance family (p4de/p5 for the 80 GB parts, g5 for the
#: A10, g4dn for the T4 — calibration sources in ``docs/hardware.md``).
GPU_CLASS_HOURLY: dict[str, tuple[float, float]] = {
    "a100": (
        AWS.on_demand_hourly / GPUS_PER_REFERENCE_INSTANCE,
        AWS.spot_hourly / GPUS_PER_REFERENCE_INSTANCE,
    ),
    "a100-80gb": (5.12, 1.54),
    "h100": (6.88, 2.75),
    "a10": (1.006, 0.402),
    "t4": (0.526, 0.158),
}
#: Aliases resolving device-model catalogue names onto pricing classes.
_GPU_CLASS_ALIASES: dict[str, str] = {
    "a100-40gb": "a100",
    "h100-80gb": "h100",
    "a10-24gb": "a10",
    "t4-16gb": "t4",
}


def gpu_class_for_device(name: str) -> str:
    """Canonical pricing-class name for a device-model name."""
    key = name.lower().strip()
    key = _GPU_CLASS_ALIASES.get(key, key)
    if key not in GPU_CLASS_HOURLY:
        raise ClusterError(
            f"no pricing for GPU class {name!r}; known: "
            f"{sorted(GPU_CLASS_HOURLY)}"
        )
    return key


def pricing_for_device(name: str) -> ProviderPricing:
    """Provider pricing object for one GPU class.

    The A100-40GB returns :data:`DEFAULT_PRICING` itself, keeping every
    pre-heterogeneity cost number bit-identical; other classes get an AWS
    pricing object whose instance price is the per-GPU rate scaled back up
    by :data:`GPUS_PER_REFERENCE_INSTANCE` so ``per_gpu_hourly`` yields
    exactly the class rate.
    """
    key = gpu_class_for_device(name)
    if key == "a100":
        return DEFAULT_PRICING
    on_demand, spot = GPU_CLASS_HOURLY[key]
    return ProviderPricing(
        provider=f"AWS/{key}",
        on_demand_hourly=on_demand * GPUS_PER_REFERENCE_INSTANCE,
        spot_hourly=spot * GPUS_PER_REFERENCE_INSTANCE,
    )


def gpu_class_table_rows() -> list[dict]:
    """Per-GPU-class hourly pricing rows (the docs/hardware.md table)."""
    rows = []
    for name in sorted(GPU_CLASS_HOURLY):
        pricing = pricing_for_device(name)
        rows.append(
            {
                "gpu_class": name,
                "on_demand_$per_gpu_h": round(
                    pricing.per_gpu_hourly(VMTier.ON_DEMAND), 4
                ),
                "spot_$per_gpu_h": round(pricing.per_gpu_hourly(VMTier.SPOT), 4),
                "savings_%": round(pricing.savings_fraction * 100, 2),
            }
        )
    return rows


def get_provider(name: str) -> ProviderPricing:
    """Look up a provider's Table 3 pricing by short name."""
    pricing = PROVIDERS.get(name.lower())
    if pricing is None:
        raise ClusterError(
            f"unknown provider {name!r}; known: {sorted(PROVIDERS)}"
        )
    return pricing


def pricing_table_rows(
    providers: dict[str, ProviderPricing] | None = None,
) -> list[dict]:
    """Table 3's rows, recomputed from the pricing objects.

    This is the single code path behind the tab03 figure, the capacity
    planner's cost estimates, and the pinned pricing regression test —
    the numbers cannot drift apart because they are all derived here.
    """
    rows = []
    seen: set[str] = set()
    for pricing in (providers or PROVIDERS).values():
        if pricing.provider in seen:
            continue
        seen.add(pricing.provider)
        rows.append(
            {
                "provider": pricing.provider,
                "on_demand_$per_h": round(pricing.on_demand_hourly, 4),
                "spot_$per_h": round(pricing.spot_hourly, 4),
                "savings_%": round(pricing.savings_fraction * 100, 2),
            }
        )
    return rows


def cost_per_1k_requests(total_cost: float, requests_served: int) -> float:
    """Dollar cost normalised to one thousand served requests.

    The unit the capacity planner ranks candidate clusters by: unlike raw
    run cost it is comparable across durations and request rates. Zero
    served requests yields ``inf`` (paying for capacity that served
    nothing) unless nothing was spent either.
    """
    if total_cost < 0 or requests_served < 0:
        raise ClusterError("cost and request count must be non-negative")
    if requests_served == 0:
        return 0.0 if total_cost == 0 else float("inf")
    return 1000.0 * total_cost / requests_served


def per_scheme_summary(summaries: dict[str, object]) -> list[dict]:
    """Per-scheme cost rows shared by Figure 9 and the capacity planner.

    ``summaries`` maps a label (scheme name, candidate key, ...) to any
    object exposing ``total_cost``, ``cost_savings_fraction`` and
    ``requests_served`` — a :class:`~repro.metrics.summary.RunSummary`
    qualifies, detached or live. Rows are JSON-safe.
    """
    rows = []
    for label, summary in summaries.items():
        rows.append(
            {
                "scheme": label,
                "cost_$": round(summary.total_cost, 4),
                "savings_%": round(summary.cost_savings_fraction * 100, 1),
                "cost_$per_1k_requests": round(
                    cost_per_1k_requests(
                        summary.total_cost, summary.requests_served
                    ),
                    4,
                ),
                "requests_served": summary.requests_served,
            }
        )
    return rows


class CostMeter:
    """Accumulates dollar cost from VM running time.

    Usage is charged per second at the node-prorated hourly rate. The meter
    separates spot from on-demand spend so experiments can report both the
    total and the mix (Figure 9).
    """

    def __init__(self, pricing: ProviderPricing = DEFAULT_PRICING) -> None:
        self.pricing = pricing
        self._seconds: dict[VMTier, float] = {
            VMTier.ON_DEMAND: 0.0,
            VMTier.SPOT: 0.0,
        }

    def charge(self, tier: VMTier, seconds: float) -> None:
        """Add ``seconds`` of single-GPU node time on ``tier``."""
        if seconds < 0:
            raise ClusterError("cannot charge negative time")
        self._seconds[tier] += seconds

    def seconds(self, tier: VMTier) -> float:
        """Total charged node-seconds for ``tier``."""
        return self._seconds[tier]

    def cost(self, tier: VMTier) -> float:
        """Dollar cost accrued on ``tier``."""
        return self._seconds[tier] * self.pricing.per_gpu_hourly(tier) / 3600.0

    @property
    def total_cost(self) -> float:
        """Total dollar cost across tiers."""
        return self.cost(VMTier.ON_DEMAND) + self.cost(VMTier.SPOT)

    @property
    def on_demand_only_equivalent_cost(self) -> float:
        """What the same node-time would have cost purely on-demand.

        This is the baseline the paper normalizes against in Figure 9.
        """
        total_seconds = sum(self._seconds.values())
        return (
            total_seconds * self.pricing.per_gpu_hourly(VMTier.ON_DEMAND) / 3600.0
        )

    @property
    def savings_fraction(self) -> float:
        """Fraction saved versus the all-on-demand equivalent."""
        baseline = self.on_demand_only_equivalent_cost
        if baseline == 0:
            return 0.0
        return 1.0 - self.total_cost / baseline

    def summary(self) -> dict:
        """JSON-safe export of the meter's full accounting.

        The per-tier seconds/costs plus the derived totals — everything
        Figure 9 and the capacity planner report about a run's spend.
        """
        return {
            "provider": self.pricing.provider,
            "on_demand_seconds": self._seconds[VMTier.ON_DEMAND],
            "spot_seconds": self._seconds[VMTier.SPOT],
            "on_demand_cost": self.cost(VMTier.ON_DEMAND),
            "spot_cost": self.cost(VMTier.SPOT),
            "total_cost": self.total_cost,
            "on_demand_only_equivalent_cost": self.on_demand_only_equivalent_cost,
            "savings_fraction": self.savings_fraction,
        }
