"""VM pricing (the paper's Table 3) and cost accounting.

Table 3 lists on-demand and spot hourly prices for an 8×A100 instance at
the three main IaaS providers, averaged across US-east/west. The paper's
cluster has one A100 per worker node, and the evaluation projects cost from
VM running time using *average AWS* pricing (Section 5) — we default to the
same but keep all three providers available.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ClusterError

#: GPUs per the Table 3 reference instance.
GPUS_PER_REFERENCE_INSTANCE = 8


class VMTier(str, Enum):
    """Reliability tier of a VM."""

    ON_DEMAND = "on_demand"
    SPOT = "spot"


@dataclass(frozen=True)
class ProviderPricing:
    """Hourly prices (USD) for one provider's 8×A100 instance (Table 3)."""

    provider: str
    on_demand_hourly: float
    spot_hourly: float

    def __post_init__(self) -> None:
        if self.on_demand_hourly <= 0 or self.spot_hourly <= 0:
            raise ClusterError("prices must be positive")
        if self.spot_hourly >= self.on_demand_hourly:
            raise ClusterError("spot must be cheaper than on-demand")

    @property
    def savings_fraction(self) -> float:
        """Spot discount relative to on-demand (Table 3's last column)."""
        return 1.0 - self.spot_hourly / self.on_demand_hourly

    def hourly(self, tier: VMTier) -> float:
        """Hourly price of the full 8-GPU instance for ``tier``."""
        if tier is VMTier.ON_DEMAND:
            return self.on_demand_hourly
        return self.spot_hourly

    def per_gpu_hourly(self, tier: VMTier) -> float:
        """Hourly price prorated to one single-GPU worker node."""
        return self.hourly(tier) / GPUS_PER_REFERENCE_INSTANCE


#: Table 3 — on-demand and spot hourly pricing for an 8×A100 instance.
AWS = ProviderPricing("AWS", on_demand_hourly=32.7726, spot_hourly=9.8318)
AZURE = ProviderPricing(
    "Microsoft Azure", on_demand_hourly=32.7700, spot_hourly=18.0235
)
GCP = ProviderPricing("Google Cloud", on_demand_hourly=30.0846, spot_hourly=8.8147)

PROVIDERS: dict[str, ProviderPricing] = {
    "aws": AWS,
    "azure": AZURE,
    "gcp": GCP,
}

#: Pricing used by the paper's cost projections (Section 5: "average AWS
#: spot and on-demand pricing").
DEFAULT_PRICING = AWS


def get_provider(name: str) -> ProviderPricing:
    """Look up a provider's Table 3 pricing by short name."""
    pricing = PROVIDERS.get(name.lower())
    if pricing is None:
        raise ClusterError(
            f"unknown provider {name!r}; known: {sorted(PROVIDERS)}"
        )
    return pricing


class CostMeter:
    """Accumulates dollar cost from VM running time.

    Usage is charged per second at the node-prorated hourly rate. The meter
    separates spot from on-demand spend so experiments can report both the
    total and the mix (Figure 9).
    """

    def __init__(self, pricing: ProviderPricing = DEFAULT_PRICING) -> None:
        self.pricing = pricing
        self._seconds: dict[VMTier, float] = {
            VMTier.ON_DEMAND: 0.0,
            VMTier.SPOT: 0.0,
        }

    def charge(self, tier: VMTier, seconds: float) -> None:
        """Add ``seconds`` of single-GPU node time on ``tier``."""
        if seconds < 0:
            raise ClusterError("cannot charge negative time")
        self._seconds[tier] += seconds

    def seconds(self, tier: VMTier) -> float:
        """Total charged node-seconds for ``tier``."""
        return self._seconds[tier]

    def cost(self, tier: VMTier) -> float:
        """Dollar cost accrued on ``tier``."""
        return self._seconds[tier] * self.pricing.per_gpu_hourly(tier) / 3600.0

    @property
    def total_cost(self) -> float:
        """Total dollar cost across tiers."""
        return self.cost(VMTier.ON_DEMAND) + self.cost(VMTier.SPOT)

    @property
    def on_demand_only_equivalent_cost(self) -> float:
        """What the same node-time would have cost purely on-demand.

        This is the baseline the paper normalizes against in Figure 9.
        """
        total_seconds = sum(self._seconds.values())
        return (
            total_seconds * self.pricing.per_gpu_hourly(VMTier.ON_DEMAND) / 3600.0
        )

    @property
    def savings_fraction(self) -> float:
        """Fraction saved versus the all-on-demand equivalent."""
        baseline = self.on_demand_only_equivalent_cost
        if baseline == 0:
            return 0.0
        return 1.0 - self.total_cost / baseline
