"""Naïve Slicing: static MIG slices, MPS within, memory-proportional LB.

The paper introduces this scheme as the ablation of PROTEAN's intelligence:
it "spatially shares (via MPS) static MIG slices among requests,
load-balanced according to slice memory, without any of the intelligence
of PROTEAN" (Section 5). It is strictness-agnostic: strict and BE batches
mix freely on any slice, and placement ignores both the resource-deficiency
factor and the interference the batch will suffer.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.engine import GPUSlice, ShareMode
from repro.gpu.mig import GEOMETRY_4G_2G_1G, Geometry
from repro.serverless.request import RequestBatch
from repro.serverless.scheduler import NodeScheduler, Placement
from repro.serverless.scheme import Scheme


class NaiveSlicingScheduler(NodeScheduler):
    """Memory-proportional placement across a static geometry.

    Batches are apportioned to slices in proportion to slice memory (a
    weighted round-robin over cumulative dispatched memory), "without any
    of the intelligence of PROTEAN": no strictness awareness, no η, and no
    second-guessing — if the proportional target slice is currently full,
    the batch simply waits for it (head-of-line, like a per-slice queue).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._assigned_memory: dict[int, float] = {}

    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        target: Optional[GPUSlice] = None
        target_key: tuple[float, int] | None = None
        for index, gpu_slice in enumerate(self.node.gpu.slices):
            if batch.memory_gb > gpu_slice.profile.memory_gb:
                continue  # can never fit this slice
            assigned = self._assigned_memory.get(id(gpu_slice), 0.0)
            key = (assigned / gpu_slice.profile.memory_gb, index)
            if target_key is None or key < target_key:
                target, target_key = gpu_slice, key
        if target is None or not self.fits_now(batch, target):
            return None
        self._assigned_memory[id(target)] = (
            self._assigned_memory.get(id(target), 0.0) + batch.memory_gb
        )
        return self.standard_placement(batch, target)


class NaiveSlicingScheme(Scheme):
    """Scheme bundle for Naïve Slicing (static (4g, 2g, 1g) geometry)."""

    name = "naive_slicing"
    share_mode = ShareMode.MPS

    def __init__(self, geometry: Geometry = GEOMETRY_4G_2G_1G) -> None:
        self._geometry = geometry

    def initial_geometry(self) -> Geometry:
        return self._geometry

    def create_scheduler(self, platform, node, pool) -> NaiveSlicingScheduler:
        return NaiveSlicingScheduler(
            platform.sim, node, pool, platform.record_batch_completion
        )
