"""Comparison schemes: the request-serving policies of prior frameworks.

Per Section 5 of the paper:

- :class:`MoleculeBetaScheme` — time sharing only (no MPS, no MIG);
- :class:`InflessLlamaScheme` — MPS-only consolidation on the whole GPU;
- :class:`NaiveSlicingScheme` — static MIG slices + MPS, memory-balanced,
  strictness-agnostic;
- :class:`GpuletScheme` — strategic MPS with SM-percentage caps;
- :class:`OracleScheme` — PROTEAN with offline-perfect configuration.

Spot-Only is a procurement mode, not a scheduling scheme — see
:class:`repro.core.procurement.ProcurementMode`.
"""

from repro.baselines.gpulet import (
    DEFAULT_BE_SM_FRACTION,
    DEFAULT_STRICT_SM_FRACTION,
    GpuletScheduler,
    GpuletScheme,
)
from repro.baselines.infless_llama import InflessLlamaScheduler, InflessLlamaScheme
from repro.baselines.molecule import MoleculeBetaScheme, MoleculeScheduler
from repro.baselines.naive_slicing import NaiveSlicingScheduler, NaiveSlicingScheme
from repro.baselines.oracle import (
    GeometryPlan,
    OracleScheme,
    PlannedReconfigurator,
)

__all__ = [
    "DEFAULT_BE_SM_FRACTION",
    "DEFAULT_STRICT_SM_FRACTION",
    "GeometryPlan",
    "GpuletScheduler",
    "GpuletScheme",
    "InflessLlamaScheduler",
    "InflessLlamaScheme",
    "MoleculeBetaScheme",
    "MoleculeScheduler",
    "NaiveSlicingScheduler",
    "NaiveSlicingScheme",
    "OracleScheme",
    "PlannedReconfigurator",
]
