"""The Section 2.2 motivation-experiment schemes (Figure 2).

Five ways of sharing a single GPU between a strict and a BE workload:

- *No MPS or MIG* — whole-GPU time sharing (Molecule-like); reuse
  :class:`repro.baselines.molecule.MoleculeBetaScheme`.
- *MPS Only* — whole-GPU MPS (INFless/Llama-like); reuse
  :class:`repro.baselines.infless_llama.InflessLlamaScheme`.
- *MIG Only* — static (4g, 3g) slices, time-shared, requests scheduled
  equally (round-robin) across them.
- *MPS+MIG* — static (4g, 3g) slices spatially shared via MPS, requests
  round-robined across them.
- *'Smart' MPS+MIG* — the straw-man PROTEAN: strict requests isolated on
  the largest slice, BE requests on the other.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.engine import ShareMode
from repro.gpu.mig import GEOMETRY_4G_3G, Geometry
from repro.serverless.request import RequestBatch
from repro.serverless.scheduler import NodeScheduler, Placement
from repro.serverless.scheme import Scheme


class RoundRobinScheduler(NodeScheduler):
    """Equal scheduling across slices: blind round-robin placement.

    The cursor only advances when a batch is actually placed, so a
    temporarily-full target slice blocks its turn (head-of-line) — this
    is exactly the naivety the motivation experiment illustrates.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cursor = 0

    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        slices = self.node.gpu.slices
        if not slices:
            return None
        candidates = [
            s for s in slices if batch.memory_gb <= s.profile.memory_gb
        ]
        if not candidates:
            return None
        target = candidates[self._cursor % len(candidates)]
        if self.node.gpu.mode is ShareMode.MPS and not self.fits_now(
            batch, target
        ):
            return None  # wait for the slice whose turn it is
        self._cursor += 1
        return self.standard_placement(batch, target)


class SmartScheduler(NodeScheduler):
    """Strict on the largest slice, BE isolated on the rest."""

    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        slices = self.node.gpu.slices_by_size(ascending=False)
        if not slices:
            return None
        if batch.strict:
            target = slices[0]
        else:
            fitting = [
                s
                for s in slices[1:]
                if batch.memory_gb <= s.profile.memory_gb
            ]
            # Degenerate single-slice geometry: share the only slice.
            target = fitting[0] if fitting else slices[0]
        if not self.fits_now(batch, target):
            return None
        return self.standard_placement(batch, target)


class _StaticGeometryScheme(Scheme):
    """Shared plumbing for the static (4g, 3g) motivation schemes."""

    def __init__(self, geometry: Geometry = GEOMETRY_4G_3G) -> None:
        self._geometry = geometry

    def initial_geometry(self) -> Geometry:
        return self._geometry


class MigOnlyScheme(_StaticGeometryScheme):
    """Static MIG slices, time-shared, round-robin."""

    name = "mig_only"
    share_mode = ShareMode.TIME_SHARE

    def create_scheduler(self, platform, node, pool) -> RoundRobinScheduler:
        return RoundRobinScheduler(
            platform.sim, node, pool, platform.record_batch_completion
        )


class MpsMigScheme(_StaticGeometryScheme):
    """Static MIG slices, MPS within each, round-robin."""

    name = "mps_mig"
    share_mode = ShareMode.MPS

    def create_scheduler(self, platform, node, pool) -> RoundRobinScheduler:
        return RoundRobinScheduler(
            platform.sim, node, pool, platform.record_batch_completion
        )


class SmartMpsMigScheme(_StaticGeometryScheme):
    """The 'Smart' MPS+MIG straw man: strict isolated on the largest slice."""

    name = "smart_mps_mig"
    share_mode = ShareMode.MPS

    def create_scheduler(self, platform, node, pool) -> SmartScheduler:
        return SmartScheduler(
            platform.sim, node, pool, platform.record_batch_completion
        )
