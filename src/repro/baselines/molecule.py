"""Molecule (beta): time-shared whole-GPU execution, no MPS, no MIG.

The paper's *Molecule (beta)* scheme "offers minimal GPU support without
MPS to consolidate requests ... it executes workload batches on the GPU(s)
via time sharing" (Section 5). Batches therefore never interfere and never
suffer resource deficiency — but they queue behind each other, which is
what dominates its tail latency in Figures 2, 6, and 8.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.engine import ShareMode
from repro.gpu.mig import GEOMETRY_FULL, Geometry
from repro.serverless.request import RequestBatch
from repro.serverless.scheduler import NodeScheduler, Placement
from repro.serverless.scheme import Scheme


class MoleculeScheduler(NodeScheduler):
    """FIFO submission to the single time-shared 7g instance."""

    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        if not self.node.gpu.slices:
            return None  # GPU unavailable (should not happen: no reconfig)
        gpu_slice = self.node.gpu.slices[0]
        # Time sharing: the engine serializes jobs, so memory only needs to
        # fit when the batch actually runs (alone) — always true on 7g.
        return self.standard_placement(batch, gpu_slice)


class MoleculeBetaScheme(Scheme):
    """Scheme bundle for Molecule (beta)."""

    name = "molecule"
    share_mode = ShareMode.TIME_SHARE

    def initial_geometry(self) -> Geometry:
        return GEOMETRY_FULL

    def create_scheduler(self, platform, node, pool) -> MoleculeScheduler:
        return MoleculeScheduler(
            platform.sim, node, pool, platform.record_batch_completion
        )
