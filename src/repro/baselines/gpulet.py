"""GPUlet: strategic MPS-only sharing with SM-percentage caps.

Section 6.2's "Comparison against strategic MPS-only usage": GPUlet sets
upper bounds on the fraction of SMs each workload may use via MPS's
execution-resource provisioning. Following the paper's configuration, we
give strict requests a ~60–65% SM cap and best-effort requests the rest.
Capping SMs limits a job's bandwidth *demand* (fewer SMs issue fewer
memory requests) and costs it compute throughput, but caches and memory
bandwidth remain fully shared — so interference persists (the paper
measures up to ~2× overhead for GPUlet despite the caps).
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.engine import ShareMode
from repro.gpu.mig import GEOMETRY_FULL, Geometry
from repro.gpu.slowdown import resource_deficiency_factor
from repro.serverless.request import RequestBatch
from repro.serverless.scheduler import NodeScheduler, Placement
from repro.serverless.scheme import Scheme

#: Paper: "~60–65% upper bound on the SM usage for strict requests".
DEFAULT_STRICT_SM_FRACTION = 0.625
#: "...with the remaining used by the BE requests."
DEFAULT_BE_SM_FRACTION = 0.375


class GpuletScheduler(NodeScheduler):
    """MPS placement on 7g with strictness-dependent SM caps."""

    def __init__(
        self,
        sim,
        node,
        pool,
        on_batch_complete,
        *,
        strict_sm_fraction: float = DEFAULT_STRICT_SM_FRACTION,
        be_sm_fraction: float = DEFAULT_BE_SM_FRACTION,
    ) -> None:
        super().__init__(sim, node, pool, on_batch_complete)
        self.strict_sm_fraction = strict_sm_fraction
        self.be_sm_fraction = be_sm_fraction

    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        if not self.node.gpu.slices:
            return None
        gpu_slice = self.node.gpu.slices[0]
        if not self.fits_now(batch, gpu_slice):
            return None
        # Each GPU hosts one strict gpulet and one BE gpulet; batches of
        # the same class run back-to-back within their partition, so at
        # most one batch per class executes at a time.
        for job in gpu_slice.running_jobs:
            if getattr(job.payload, "strict", None) == batch.strict:
                return None
        model = batch.model
        sm = self.strict_sm_fraction if batch.strict else self.be_sm_fraction
        # SM capping slows the job like a compute-only deficiency (memory
        # bandwidth and caches are NOT partitioned by MPS), and shrinks
        # its bandwidth demand in proportion to active SMs.
        rdf = resource_deficiency_factor(
            compute_fraction=sm,
            bandwidth_fraction=1.0,
            compute_sensitivity=model.compute_sensitivity,
            bandwidth_sensitivity=model.bandwidth_sensitivity,
        )
        return Placement(
            gpu_slice=gpu_slice,
            rdf=rdf,
            fbr=model.slice_fbr(gpu_slice.profile, sm_fraction=sm),
            sm_fraction=sm,
        )


class GpuletScheme(Scheme):
    """Scheme bundle for GPUlet (strategic MPS-only)."""

    name = "gpulet"
    share_mode = ShareMode.MPS

    def __init__(
        self,
        strict_sm_fraction: float = DEFAULT_STRICT_SM_FRACTION,
        be_sm_fraction: float = DEFAULT_BE_SM_FRACTION,
    ) -> None:
        self.strict_sm_fraction = strict_sm_fraction
        self.be_sm_fraction = be_sm_fraction

    def initial_geometry(self) -> Geometry:
        return GEOMETRY_FULL

    def create_scheduler(self, platform, node, pool) -> GpuletScheduler:
        return GpuletScheduler(
            platform.sim,
            node,
            pool,
            platform.record_batch_completion,
            strict_sm_fraction=self.strict_sm_fraction,
            be_sm_fraction=self.be_sm_fraction,
        )
