"""INFless / Llama: MPS-only spatial sharing of the whole GPU.

Both frameworks "employ MPS to schedule multiple request batches onto the
available GPU while being agnostic of its MIG capabilities" (Section 5).
All batches routed to a node are co-located on the unpartitioned 7g via
MPS regardless of strictness, so strict requests absorb the cumulative
interference of every co-resident — the dominant term in their tail
latency for HI/VHI models (Figures 6, 12, 13).
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.engine import ShareMode
from repro.gpu.mig import GEOMETRY_FULL, Geometry
from repro.serverless.dispatcher import DispatchPolicy
from repro.serverless.request import RequestBatch
from repro.serverless.scheduler import NodeScheduler, Placement
from repro.serverless.scheme import Scheme


class InflessLlamaScheduler(NodeScheduler):
    """FIFO MPS placement onto the single 7g instance."""

    def _place(self, batch: RequestBatch) -> Optional[Placement]:
        if not self.node.gpu.slices:
            return None
        gpu_slice = self.node.gpu.slices[0]
        if not self.fits_now(batch, gpu_slice):
            return None  # wait for memory; FIFO order preserved by dispatch
        return self.standard_placement(batch, gpu_slice)


class InflessLlamaScheme(Scheme):
    """Scheme bundle for the INFless/Llama serving policy.

    Uses the CONSOLIDATE dispatch policy: both frameworks pack batches
    onto as few GPUs as possible to maximize utilization, which is the
    behaviour the paper identifies as their weakness on MIG-era GPUs.
    """

    name = "infless_llama"
    share_mode = ShareMode.MPS
    dispatch_policy = DispatchPolicy.CONSOLIDATE
    consolidation_limit = 6

    def initial_geometry(self) -> Geometry:
        return GEOMETRY_FULL

    def create_scheduler(self, platform, node, pool) -> InflessLlamaScheduler:
        return InflessLlamaScheduler(
            platform.sim, node, pool, platform.record_batch_completion
        )
