"""Oracle: PROTEAN's policies with offline-perfect knowledge (Section 6.2).

The paper's *Oracle* runs "all of PROTEAN's policies, but with knowledge
of the ideal GPU configurations and job scheduling on slices ... (due to
being done offline)", and "does not suffer from GPU re-configuration
overheads". We model both advantages:

- geometry changes follow a precomputed *plan* (built by the experiment
  harness from the true BE model rotation and true request rates, via the
  same :func:`repro.core.reconfigurator.decide_geometry` rule PROTEAN uses
  online with EWMA predictions);
- MIG reconfiguration takes zero time on Oracle nodes, and the plan is
  applied the moment each window begins rather than after PROTEAN's
  wait-counter hysteresis.
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

from repro.core.protean import ProteanScheme
from repro.core.reconfigurator import GpuReconfigurator, ReconfiguratorConfig
from repro.gpu.mig import Geometry

#: A geometry plan: time-ordered (effective_from, geometry) pairs.
GeometryPlan = Sequence[tuple[float, Geometry]]


class PlannedReconfigurator(GpuReconfigurator):
    """Replays a precomputed geometry plan instead of predicting."""

    def __init__(self, platform, plan: GeometryPlan,
                 config: ReconfiguratorConfig | None = None) -> None:
        super().__init__(
            platform,
            config
            or ReconfiguratorConfig(monitor_interval=1.0, wait_limit=1),
        )
        self._plan = sorted(plan, key=lambda item: item[0])
        self._times = [item[0] for item in self._plan]

    def planned_for(self, time: float) -> Optional[Geometry]:
        """The geometry the plan prescribes at ``time``."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return None
        return self._plan[index][1]

    def on_monitor(self) -> None:
        # Look one monitor interval ahead: the oracle configures *in
        # advance* of the window it is preparing for.
        decision = self.planned_for(
            self.platform.sim.now + self.config.monitor_interval
        )
        if decision is None:
            return
        self.target = decision
        self.decisions += 1
        mismatched = [
            node
            for node in self.platform.cluster.active_nodes
            if node.gpu.geometry != decision and node.node_id not in self._pending
        ]
        if mismatched:
            self._apply(decision, mismatched)


class OracleScheme(ProteanScheme):
    """PROTEAN + perfect geometry plan + free reconfiguration."""

    name = "oracle"

    def __init__(self, plan: GeometryPlan, **kwargs) -> None:
        kwargs.setdefault("enable_reconfigurator", False)
        super().__init__(**kwargs)
        self._plan = plan

    def on_node_added(self, platform, node, scheduler) -> None:
        # Oracle pays no reconfiguration downtime.
        node.gpu.reconfig_seconds = 0.0

    def on_platform_start(self, platform) -> None:
        super().on_platform_start(platform)  # autoscaler (if enabled)
        self.reconfigurator = PlannedReconfigurator(platform, self._plan)
        self.reconfigurator.start()
