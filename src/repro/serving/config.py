"""Live-serving configuration: one :class:`ServeConfig` per deployment.

Follows the :class:`~repro.experiments.config.ExperimentConfig`
conventions exactly: a frozen dataclass, misconfiguration normalised to
:class:`~repro.errors.ConfigurationError` at construction, and a
versioned ``to_dict``/``from_dict`` wire format that rejects unknown
keys and refuses payloads from a newer schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.serving.executor import executor_names

#: Version stamp of the :meth:`ServeConfig.to_dict` wire format. Bump
#: when a field changes meaning (not when one is merely added with a
#: default — old payloads then still parse).
SERVE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ServeConfig:
    """Full description of one live-serving deployment.

    The embedded ``experiment`` supplies everything the platform needs
    (scheme-agnostic knobs, workload mix, seed); the fields here are the
    live-mode additions: where to listen, how fast to replay, which
    executor realizes batches, and the sim-vs-live agreement tolerances
    the replay report asserts.
    """

    #: Platform/workload description (cluster size, SLOs, seed, ...).
    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    #: Scheme registry name driving the live platform.
    scheme: str = "protean"

    # Gateway
    host: str = "127.0.0.1"
    #: TCP port; 0 lets the OS pick (the bound port is reported back).
    port: int = 8100

    # Replay
    #: Trace seconds per wall second (replay accelerator; 1.0 = real time).
    speedup: float = 1.0
    #: Which registered executor realizes batches ("sleep" = the stub).
    executor: str = "sleep"
    #: Extra wall seconds to wait for in-flight work after the trace's
    #: own duration+drain budget has elapsed (replay teardown bound).
    drain_wall_seconds: float = 30.0

    # Sim-vs-live agreement tolerances (documented in docs/live_serving.md).
    #: Absolute tolerance on SLO attainment (a fraction in [0, 1]).
    attainment_tolerance: float = 0.1
    #: Relative tolerance on strict p99 latency...
    p99_tolerance_frac: float = 0.5
    #: ... with this absolute floor (seconds) so near-zero p99s compare
    #: on the skew scale that actually bounds a live run.
    p99_tolerance_abs: float = 0.5
    #: Wall-clock scheduling-jitter budget (seconds). Event-loop lag is a
    #: *wall* phenomenon, so on the trace timeline it is amplified by the
    #: speedup factor; the p99 band widens by ``jitter × speedup`` so the
    #: same machine noise judges identically at any replay speed.
    jitter_wall_seconds: float = 0.025

    def __post_init__(self) -> None:
        if not isinstance(self.experiment, ExperimentConfig):
            raise ConfigurationError(
                "experiment must be an ExperimentConfig; "
                f"got {type(self.experiment).__name__}"
            )
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if self.speedup <= 0:
            raise ConfigurationError("speedup must be positive")
        if self.executor.lower().strip() not in executor_names():
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; "
                f"available: {', '.join(executor_names())}"
            )
        if self.drain_wall_seconds <= 0:
            raise ConfigurationError("drain_wall_seconds must be positive")
        if not 0.0 <= self.attainment_tolerance <= 1.0:
            raise ConfigurationError("attainment_tolerance must lie in [0, 1]")
        if self.p99_tolerance_frac < 0 or self.p99_tolerance_abs < 0:
            raise ConfigurationError("p99 tolerances must be non-negative")
        if self.jitter_wall_seconds < 0:
            raise ConfigurationError("jitter_wall_seconds must be non-negative")

    def with_overrides(self, **overrides) -> "ServeConfig":
        """A copy with fields replaced (convenience for the CLI)."""
        return replace(self, **overrides)

    def p99_tolerance(self, sim_p99: float) -> float:
        """The p99 agreement band around a given simulator prediction."""
        return max(
            self.p99_tolerance_frac * sim_p99,
            self.p99_tolerance_abs,
            self.jitter_wall_seconds * self.speedup,
        )

    # ------------------------------------------------------------------
    # Serialisation (mirrors ExperimentConfig's wire-format conventions)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe, versioned representation; round-trips exactly."""
        payload: dict = {"version": SERVE_SCHEMA_VERSION}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "experiment":
                value = value.to_dict()
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeConfig":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys.

        The ``version`` key is optional (defaults to the current schema);
        payloads from a *newer* schema are refused rather than silently
        misread.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"serve payload must be a dict, got {type(payload).__name__}"
            )
        data = dict(payload)
        version = data.pop("version", SERVE_SCHEMA_VERSION)
        if version != SERVE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported serve schema version {version!r}; "
                f"this build reads version {SERVE_SCHEMA_VERSION}"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown serve field(s): {', '.join(sorted(unknown))}"
            )
        if "experiment" in data:
            data["experiment"] = ExperimentConfig.from_dict(data["experiment"])
        return cls(**data)


def _smoke_experiment() -> ExperimentConfig:
    # Lightly loaded on purpose: sim-vs-live agreement for the sleep stub
    # degrades with queueing sensitivity, and the smoke preset exists to
    # validate the serving machinery, not to stress the scheduler.
    return ExperimentConfig(
        duration=5.0,
        warmup=1.0,
        drain=60.0,
        n_nodes=2,
        trace="constant",
        strict_fraction=1.0,
        offered_load=0.4,
        # Short cold starts: with an 8 s paper-default cold start a 5 s
        # trace is wall-to-wall cold, attainment pins at 0 on both sides,
        # and the agreement check degenerates. Half a second keeps the
        # cold-start path exercised while leaving SLO headroom.
        cold_start_seconds=0.5,
        prewarm_containers=3,
        seed=7,
    )


#: Named deployments for the CLI (``repro serve <name>``): name → factory.
SERVE_PRESETS = {
    # 5 s constant-rate strict-only trace on 2 nodes at half load — the
    # CI smoke target; replayable end-to-end in well under a minute at
    # --speedup 50.
    "smoke": lambda: ServeConfig(experiment=_smoke_experiment()),
    # The standard small experiment, live — wiki trace, mixed workload.
    "default": lambda: ServeConfig(
        experiment=ExperimentConfig(
            duration=60.0, warmup=10.0, drain=120.0, n_nodes=2,
            offered_load=0.6, seed=7,
        )
    ),
}


def serve_preset(name: str) -> ServeConfig:
    """Resolve a named deployment preset to a fresh :class:`ServeConfig`."""
    factory = SERVE_PRESETS.get(name.lower().strip())
    if factory is None:
        raise ConfigurationError(
            f"unknown serve preset {name!r}; "
            f"available: {', '.join(sorted(SERVE_PRESETS))}"
        )
    return factory()
