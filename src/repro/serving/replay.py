"""Trace replay: drive the live platform with a recorded request stream
and cross-check the measured latencies against the discrete-event
prediction for the same seed.

This closes the sim-to-real loop: :func:`replay` generates the exact
request stream the simulator would see (same seed, same trace model,
same batch alignment), injects it into a :class:`LiveRun` at
``speedup``× real time with the configured executor realizing each
batch, then runs the discrete-event simulator on the *same* specs and
compares strict p50/p99 and SLO attainment. The agreement tolerances
live in :class:`~repro.serving.config.ServeConfig` and are documented in
``docs/live_serving.md`` — they bound the wall-clock skew a live run
legitimately accumulates (callback processing time is invisible to the
simulator but real on a wall clock, and is amplified by the speedup).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError
from repro.experiments.runner import build_specs, run_scheme
from repro.metrics.latency import p50, p99
from repro.metrics.slo import slo_compliance
from repro.metrics.summary import partition_window
from repro.serving.config import ServeConfig
from repro.serving.runtime import LiveRun

#: Version stamp of the :meth:`ReplayReport.to_dict` wire format.
REPLAY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one sim-vs-live replay cross-check (plain data)."""

    scheme: str
    seed: int
    speedup: float
    executor: str

    # Live-side conservation counters.
    injected: int
    admitted: int
    completed: int
    rejected: int
    drained: bool
    executor_incomplete: int
    wall_seconds: float

    # Measured-window metrics, live vs simulated.
    live_strict_requests: int
    live_p50: float
    live_p99: float
    live_attainment: float
    sim_strict_requests: int
    sim_p50: float
    sim_p99: float
    sim_attainment: float

    # Agreement verdict under the config's documented tolerances.
    p99_tolerance: float
    attainment_tolerance: float
    p99_agrees: bool
    attainment_agrees: bool

    @property
    def agrees(self) -> bool:
        """Overall verdict: drained cleanly and both metrics in band."""
        return self.drained and self.p99_agrees and self.attainment_agrees

    def to_dict(self) -> dict:
        """JSON-safe, versioned representation; round-trips exactly."""
        payload: dict = {"version": REPLAY_SCHEMA_VERSION}
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        payload["agrees"] = self.agrees
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ReplayReport":
        """Parse a :meth:`to_dict` payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"report payload must be a dict, got {type(payload).__name__}"
            )
        data = dict(payload)
        version = data.pop("version", REPLAY_SCHEMA_VERSION)
        if version != REPLAY_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported report schema version {version!r}; "
                f"this build reads version {REPLAY_SCHEMA_VERSION}"
            )
        data.pop("agrees", None)  # derived, not stored
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown report field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    def summary_lines(self) -> list[str]:
        """Human-readable report body for the CLI."""
        verdict = "AGREE" if self.agrees else "DISAGREE"
        return [
            f"replay: scheme={self.scheme} seed={self.seed} "
            f"speedup={self.speedup:g}x executor={self.executor}",
            f"  counts: injected={self.injected} admitted={self.admitted} "
            f"completed={self.completed} rejected={self.rejected} "
            f"drained={self.drained}",
            f"  wall time: {self.wall_seconds:.2f}s",
            f"  strict p50:  live {self.live_p50:.4f}s  "
            f"vs sim {self.sim_p50:.4f}s",
            f"  strict p99:  live {self.live_p99:.4f}s  "
            f"vs sim {self.sim_p99:.4f}s  "
            f"(tolerance ±{self.p99_tolerance:.3f}s: "
            f"{'ok' if self.p99_agrees else 'FAIL'})",
            f"  attainment:  live {self.live_attainment:.4f}  "
            f"vs sim {self.sim_attainment:.4f}  "
            f"(tolerance ±{self.attainment_tolerance:.3f}: "
            f"{'ok' if self.attainment_agrees else 'FAIL'})",
            f"  verdict: {verdict}",
        ]


async def replay_async(config: ServeConfig) -> ReplayReport:
    """Coroutine body of :func:`replay` (call from a running loop)."""
    experiment = config.experiment
    specs = build_specs(experiment)
    run = await LiveRun(config).start()
    try:
        injected = run.inject(specs)
        # Wall budget: the trace itself plus its drain window at this
        # speedup, then the configured teardown allowance on top.
        budget = (
            (experiment.duration + experiment.drain) / config.speedup
            + config.drain_wall_seconds
        )
        drained = await run.drain(timeout_wall=budget)
        wall_seconds = run.clock.wall_now
        platform = run.platform
        assert platform is not None
        records = list(platform.collector.records)
        admitted = run.requests_admitted
        rejected = run.requests_rejected
        completed = run.requests_completed
        executor_incomplete = run.executor_incomplete
    finally:
        await run.stop()

    window_start, window_end = experiment.warmup, experiment.duration
    _measured, live_strict, _be, _in_window = partition_window(
        records, window_start, window_end
    )
    expected_strict = sum(
        1
        for s in specs
        if s.strict and window_start <= s.arrival < window_end
    )
    live_dropped = max(0, expected_strict - len(live_strict))

    # The discrete-event prediction for the very same request stream.
    sim_result = run_scheme(config.scheme, experiment, specs=specs)
    sim = sim_result.summary

    live_p99 = p99(live_strict)
    live_attainment = slo_compliance(live_strict, dropped_strict=live_dropped)
    p99_tolerance = config.p99_tolerance(sim.strict_p99)
    return ReplayReport(
        scheme=config.scheme,
        seed=experiment.seed,
        speedup=config.speedup,
        executor=config.executor,
        injected=injected,
        admitted=admitted,
        completed=completed,
        rejected=rejected,
        drained=drained,
        executor_incomplete=executor_incomplete,
        wall_seconds=wall_seconds,
        live_strict_requests=len(live_strict),
        live_p50=p50(live_strict),
        live_p99=live_p99,
        live_attainment=live_attainment,
        sim_strict_requests=sim.strict_requests,
        sim_p50=sim.strict_p50,
        sim_p99=sim.strict_p99,
        sim_attainment=sim.slo_compliance,
        p99_tolerance=p99_tolerance,
        attainment_tolerance=config.attainment_tolerance,
        p99_agrees=abs(live_p99 - sim.strict_p99) <= p99_tolerance,
        attainment_agrees=(
            abs(live_attainment - sim.slo_compliance)
            <= config.attainment_tolerance
        ),
    )


def replay(*, config: ServeConfig) -> ReplayReport:
    """Replay ``config``'s trace live and cross-check against the sim.

    Blocking entry point (owns the event loop); keyword-only by the
    public-API convention.
    """
    return asyncio.run(replay_async(config))
