"""Minimal stdlib HTTP gateway in front of a :class:`LiveRun`.

Endpoints (JSON in, JSON out; HTTP/1.1, one request per connection):

- ``GET /healthz`` — liveness + clock readings.
- ``GET /metrics`` — live counters and latency percentiles.
- ``POST /v1/requests`` — admit one inference request through the real
  platform (gateway → batcher → dispatcher → scheduler → engine) and
  respond when it completes, with per-request latency on both the trace
  and wall timelines.

Built on :func:`asyncio.start_server` — no dependencies beyond the
standard library, and the handler shares the event loop with the
platform's timers so there is no cross-thread state to guard.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ConfigurationError, ReproError, UnknownModelError
from repro.serverless.request import Request
from repro.serving.runtime import LiveRun
from repro.workloads.registry import get_model
from repro.workloads.scaling import scale_model

#: Refuse request bodies beyond this size (the API carries tiny JSON).
_MAX_BODY_BYTES = 64 * 1024
#: Wall-second cap on waiting for one request's completion.
_COMPLETION_TIMEOUT_WALL = 120.0


class HttpGateway:
    """The HTTP front door: routes requests into a started LiveRun."""

    def __init__(self, run: LiveRun, *, host: str, port: int) -> None:
        self.run = run
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "HttpGateway":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # Port 0 asks the OS to pick; report what was actually bound.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._dispatch(reader)
        except ConfigurationError as exc:
            status, payload = 400, {"error": str(exc)}
        except ReproError as exc:
            status, payload = 500, {"error": str(exc)}
        except (asyncio.IncompleteReadError, ValueError) as exc:
            status, payload = 400, {"error": f"malformed request: {exc}"}
        try:
            body = json.dumps(payload).encode()
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      405: "Method Not Allowed", 429: "Too Many Requests",
                      500: "Internal Server Error",
                      504: "Gateway Timeout"}.get(status, "OK")
            writer.write(
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode() + body
            )
            await writer.drain()
        finally:
            writer.close()

    async def _dispatch(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": f"malformed request line: {request_line!r}"}
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        if method == "GET" and path == "/healthz":
            return 200, {
                "status": "ok",
                "clock_now": self.run.clock.now,
                "wall_now": self.run.clock.wall_now,
            }
        if method == "GET" and path == "/metrics":
            return 200, self.run.metrics_snapshot()
        if path == "/v1/requests":
            if method != "POST":
                return 405, {"error": "use POST for /v1/requests"}
            length = int(headers.get("content-length", "0"))
            if length > _MAX_BODY_BYTES:
                return 400, {"error": "request body too large"}
            raw = await reader.readexactly(length) if length else b"{}"
            return await self._handle_inference(raw)
        return 404, {"error": f"no route for {method} {path}"}

    # ------------------------------------------------------------------
    # Inference route
    # ------------------------------------------------------------------
    async def _handle_inference(self, raw: bytes):
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}
        experiment = self.run.config.experiment
        name = body.get("model", experiment.strict_model)
        strict = bool(body.get("strict", True))
        multiplier = float(body.get("slo_multiplier", experiment.slo_multiplier))
        tenant = str(body.get("tenant", "default"))
        try:
            profile = scale_model(get_model(name), experiment.scale)
        except UnknownModelError as exc:
            return 400, {"error": str(exc)}
        arrival = self.run.clock.now
        deadline = (
            arrival + profile.slo_target(multiplier) if strict else None
        )
        request = Request(
            model=profile,
            strict=strict,
            arrival=arrival,
            deadline=deadline,
            tenant=tenant,
        )
        wall_start = self.run.clock.wall_now
        future = self.run.submit(request)
        try:
            outcome = await asyncio.wait_for(
                future, timeout=_COMPLETION_TIMEOUT_WALL
            )
        except asyncio.TimeoutError:
            return 504, {
                "error": "request did not complete in time",
                "request_id": request.request_id,
            }
        if outcome is None:
            # Tenancy quota said no: a 429-style gateway rejection.
            return 429, {
                "request_id": request.request_id,
                "rejected": True,
                "tenant": tenant,
            }
        _completed, finished_at = outcome
        latency = finished_at - arrival
        return 200, {
            "request_id": request.request_id,
            "model": profile.name,
            "strict": strict,
            "rejected": False,
            "latency_s": latency,
            "wall_latency_s": self.run.clock.wall_now - wall_start,
            "deadline": deadline,
            "slo_violated": (
                finished_at > deadline if deadline is not None else None
            ),
        }
