"""Pluggable executors: what "running a batch" means in live mode.

In the discrete-event simulator, a batch's execution is purely virtual —
the GPU engine schedules a completion event ``work × rdf × interference``
seconds ahead and nobody actually computes anything. In live mode the
engine's clock-driven completion logic still decides *when* a batch
finishes (its interference model stays authoritative, so sim and live
agree by construction for the sleep stub), and an :class:`Executor`
*realizes* the work concurrently: the default :class:`SleepExecutor`
holds a wall-clock timer for the profiled duration; a real deployment
would swap in an executor that forwards the batch to a model container.

Executors attach at the job-launch boundary (the scheduler's
``launch_observer`` hook, installed by the serving runtime) and report
back through ``on_done`` — a sanity channel the replay report uses to
confirm every launched batch was realized, not a scheduling signal.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.errors import ConfigurationError
from repro.serverless.request import RequestBatch
from repro.simulation.clock import Clock

#: Completion callback: ``on_done(batch, realized_seconds)``.
DoneCallback = Callable[[RequestBatch, float], None]


class Executor(ABC):
    """Interface a live-mode batch executor implements."""

    #: Registry name (what ``ServeConfig.executor`` selects).
    name: str = "executor"

    @abstractmethod
    def launch(
        self,
        batch: RequestBatch,
        *,
        planned_seconds: float,
        clock: Clock,
        on_done: DoneCallback,
    ) -> None:
        """Realize ``batch``'s execution.

        ``planned_seconds`` is the engine's interference-free execution
        estimate on the assigned slice (work scaled by device speed and
        RDF), on ``clock``'s timeline. Implementations must call
        ``on_done(batch, realized_seconds)`` exactly once when the work
        is finished.
        """

    def close(self) -> None:
        """Release executor resources at the end of a run (optional)."""


class SleepExecutor(Executor):
    """The default stub: consume each batch's profiled duration as time.

    A pure clock wait — ``launch`` schedules ``on_done`` exactly
    ``planned_seconds`` later on the active clock (wall time divided by
    the replay speedup). No GPU, no model, no payload inspection: this is
    the executor that makes sim-vs-live cross-checks meaningful, because
    any disagreement is then attributable to the serving machinery, not
    the workload.
    """

    name = "sleep"

    def __init__(self) -> None:
        self.launched = 0
        self.completed = 0

    def launch(
        self,
        batch: RequestBatch,
        *,
        planned_seconds: float,
        clock: Clock,
        on_done: DoneCallback,
    ) -> None:
        self.launched += 1

        def done() -> None:
            self.completed += 1
            on_done(batch, planned_seconds)

        clock.after(max(0.0, planned_seconds), done, label="executor.sleep")


#: Executor registry: name → zero-argument factory.
_EXECUTORS: dict[str, Callable[[], Executor]] = {}


def register_executor(
    name: str, factory: Callable[[], Executor], *, replace: bool = False
) -> None:
    """Register an executor factory under ``name`` (case-insensitive)."""
    key = name.lower().strip()
    if not replace and key in _EXECUTORS:
        raise ConfigurationError(f"executor {key!r} is already registered")
    _EXECUTORS[key] = factory


def executor_names() -> tuple[str, ...]:
    """Registered executor names, sorted."""
    return tuple(sorted(_EXECUTORS))


def get_executor(name: str) -> Executor:
    """Build a fresh executor by registry name."""
    key = name.lower().strip()
    factory = _EXECUTORS.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: {', '.join(executor_names())}"
        )
    return factory()


register_executor("sleep", SleepExecutor)
