"""Live serving mode: the simulated platform behind a real HTTP gateway.

The same scheduler/batcher/dispatcher/engine stack every experiment
simulates runs here against a wall clock
(:class:`~repro.simulation.wallclock.AsyncioClock`), with a pluggable
:class:`Executor` realizing each batch's profiled duration (the default
:class:`SleepExecutor` sleeps it) and an asyncio HTTP gateway in front
(``python -m repro serve``). :func:`replay` drives a recorded trace at
``speedup``× real time and cross-checks measured p50/p99/attainment
against the discrete-event prediction for the same seed — the
:class:`ReplayReport` is the sim-to-real agreement artifact.

See ``docs/live_serving.md`` for the clock boundary contract, the
executor plugin API, and the replay/cross-check workflow.
"""

from repro.serving.config import (
    SERVE_PRESETS,
    SERVE_SCHEMA_VERSION,
    ServeConfig,
    serve_preset,
)
from repro.serving.executor import (
    Executor,
    SleepExecutor,
    executor_names,
    get_executor,
    register_executor,
)
from repro.serving.gateway import HttpGateway
from repro.serving.replay import (
    REPLAY_SCHEMA_VERSION,
    ReplayReport,
    replay,
    replay_async,
)
from repro.serving.runtime import LiveRun, serve, serve_async

__all__ = [
    "Executor",
    "HttpGateway",
    "LiveRun",
    "REPLAY_SCHEMA_VERSION",
    "ReplayReport",
    "SERVE_PRESETS",
    "SERVE_SCHEMA_VERSION",
    "ServeConfig",
    "SleepExecutor",
    "executor_names",
    "get_executor",
    "register_executor",
    "replay",
    "replay_async",
    "serve",
    "serve_async",
    "serve_preset",
]
