"""The live serving runtime: the simulated platform on a wall clock.

:class:`LiveRun` assembles exactly the object graph
:func:`repro.experiments.runner.run_scheme` builds — platform, spot
market, procurement, prewarmed container pools — but hands every
component an :class:`~repro.simulation.wallclock.AsyncioClock` instead
of the discrete-event :class:`~repro.simulation.simulator.Simulator`.
Nothing in the scheduler/batcher/dispatcher/engine stack knows the
difference: they were written against the Clock protocol surface
(``now``/``at``/``after``/``cancel``) and run unchanged.

The one live-mode addition is the executor bridge: a
:class:`_LiveScheme` wrapper installs the configured
:class:`~repro.serving.executor.Executor` on every per-node scheduler's
``launch_observer`` hook, so each batch's profiled duration is *realized*
(slept, by default) concurrently with the engine's virtual accounting.
"""

from __future__ import annotations

import asyncio

from repro.errors import ServingError
from repro.experiments.runner import _prewarm, assemble_platform
from repro.experiments.schemes import get_scheme
from repro.observability.tracer import NULL_TRACER, SimTracer, Tracer
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.request import Request, RequestBatch
from repro.serverless.scheduler import NodeScheduler, Placement
from repro.serverless.scheme import Scheme
from repro.serving.config import ServeConfig
from repro.serving.executor import Executor, get_executor
from repro.simulation.identity import reset_run_ids
from repro.simulation.wallclock import AsyncioClock


class _LiveScheme(Scheme):
    """Delegating wrapper that wires the executor bridge per scheduler.

    Every policy decision is forwarded to the wrapped scheme untouched;
    the only addition is setting ``launch_observer`` on each scheduler
    the scheme creates. This keeps executor attachment out of the scheme
    and scheduler code paths entirely — the default (simulated) path
    never sees a wrapper.
    """

    def __init__(self, inner: Scheme, on_launch) -> None:
        self._inner = inner
        self._on_launch = on_launch
        # Class-attribute knobs are read off instances by the platform;
        # shadow them with the wrapped scheme's values.
        self.name = inner.name
        self.share_mode = inner.share_mode
        self.dispatch_policy = inner.dispatch_policy
        self.consolidation_limit = inner.consolidation_limit

    def initial_geometry(self):
        return self._inner.initial_geometry()

    def create_scheduler(self, platform, node, pool) -> NodeScheduler:
        scheduler = self._inner.create_scheduler(platform, node, pool)

        def observe(batch: RequestBatch, placement: Placement) -> None:
            self._on_launch(scheduler, batch, placement)

        scheduler.launch_observer = observe
        return scheduler

    def on_node_added(self, platform, node, scheduler) -> None:
        self._inner.on_node_added(platform, node, scheduler)

    def on_node_retired(self, platform, node) -> None:
        self._inner.on_node_retired(platform, node)

    def on_platform_start(self, platform) -> None:
        self._inner.on_platform_start(platform)


class LiveRun:
    """One live deployment: clock + platform + executor + counters.

    Build it, then ``await start()`` from inside a running event loop.
    Requests enter through :meth:`submit` (the HTTP gateway) or
    :meth:`inject` (trace replay); :meth:`drain` waits for completions.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.clock = AsyncioClock(
            config.experiment.seed, speedup=config.speedup
        )
        self.executor: Executor = get_executor(config.executor)
        self.platform: ServerlessPlatform | None = None
        self.tracer: Tracer = NULL_TRACER
        self.requests_completed = 0
        self.requests_injected = 0
        self.executor_incomplete = 0
        self._waiters: dict[int, asyncio.Future] = {}
        self._procurement = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "LiveRun":
        """Bind the clock, assemble the platform, prewarm containers."""
        if self.platform is not None:
            raise ServingError("LiveRun.start called twice")
        self.clock.start()
        experiment = self.config.experiment
        # Fresh id spaces, as every runner entry point guarantees.
        reset_run_ids()
        if experiment.tracing:
            # Spans are stamped on the live clock's timeline: measured
            # wall time (scaled by the replay speedup), not simulated
            # time — see docs/live_serving.md.
            self.tracer = SimTracer(self.clock)
        scheme = _LiveScheme(get_scheme(self.config.scheme), self._on_launch)
        platform, _market, procurement = assemble_platform(
            self.clock, scheme, experiment, tracer=self.tracer
        )
        self.platform = platform
        self._procurement = procurement
        platform.completion_observers.append(self._on_batch_complete)
        procurement.provision_initial()
        _prewarm(platform, experiment)
        return self

    async def stop(self) -> None:
        """Tear down: cancel timers, settle billing, close the executor."""
        if self.platform is not None:
            self.platform.finalize()
        if self.tracer.enabled:
            self.tracer.close_open_spans(reason="serve stopped")
        self.executor.close()
        self.clock.shutdown()
        for future in self._waiters.values():
            if not future.done():
                future.cancel()
        self._waiters.clear()

    def _require_platform(self) -> ServerlessPlatform:
        if self.platform is None:
            raise ServingError("LiveRun is not started; await start() first")
        return self.platform

    # ------------------------------------------------------------------
    # Executor bridge
    # ------------------------------------------------------------------
    def _on_launch(
        self,
        scheduler: NodeScheduler,
        batch: RequestBatch,
        placement: Placement,
    ) -> None:
        planned = (
            batch.work
            / scheduler.node.gpu.device_model.speed_factor
            * placement.rdf
        )
        self.executor_incomplete += 1
        self.executor.launch(
            batch,
            planned_seconds=planned,
            clock=self.clock,
            on_done=self._on_executor_done,
        )

    def _on_executor_done(self, batch: RequestBatch, realized: float) -> None:
        self.executor_incomplete -= 1

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> asyncio.Future:
        """Admit one request; resolve a future with its completion record.

        The future resolves to ``(request, finished_at)`` on completion,
        or to ``None`` if the gateway rejected the request outright.
        """
        platform = self._require_platform()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        admitted_before = platform.gateway.requests_admitted
        self._waiters[request.request_id] = future
        self.requests_injected += 1
        platform.gateway.admit(request)
        if platform.gateway.requests_admitted == admitted_before:
            # Rejected (tenant quota): resolve immediately with None.
            self._waiters.pop(request.request_id, None)
            future.set_result(None)
        return future

    def inject(self, specs) -> int:
        """Schedule a whole trace for arrival (replay path)."""
        platform = self._require_platform()
        specs = list(specs)
        self.requests_injected += len(specs)
        platform.inject(specs)
        return len(specs)

    def _on_batch_complete(self, batch: RequestBatch, timing) -> None:
        self.requests_completed += len(batch.requests)
        if not self._waiters:
            return
        for request in batch.requests:
            future = self._waiters.pop(request.request_id, None)
            if future is not None and not future.done():
                future.set_result((request, timing.finished_at))

    # ------------------------------------------------------------------
    # Progress / drain
    # ------------------------------------------------------------------
    @property
    def requests_admitted(self) -> int:
        return self._require_platform().gateway.requests_admitted

    @property
    def requests_rejected(self) -> int:
        return self._require_platform().gateway.requests_rejected

    def settled(self) -> bool:
        """Whether every injected request has completed or been rejected."""
        return (
            self.requests_completed + self.requests_rejected
            >= self.requests_injected
        )

    async def drain(self, *, timeout_wall: float) -> bool:
        """Wait (wall-bounded) until the run settles. Returns success."""
        return await self.clock.wait_for(
            self.settled, timeout_wall=timeout_wall
        )

    def metrics_snapshot(self) -> dict:
        """Live counters + latency percentiles (the /metrics payload)."""
        from repro.metrics.latency import p50, p99

        platform = self._require_platform()
        records = list(platform.collector.records)
        return {
            "clock_now": self.clock.now,
            "wall_now": self.clock.wall_now,
            "speedup": self.config.speedup,
            "scheme": self.config.scheme,
            "executor": self.executor.name,
            "requests_injected": self.requests_injected,
            "requests_admitted": platform.gateway.requests_admitted,
            "requests_rejected": platform.gateway.requests_rejected,
            "requests_completed": self.requests_completed,
            "executor_incomplete": self.executor_incomplete,
            "nodes_active": len(platform.cluster.active_nodes),
            "dispatch_backlog": platform.dispatcher.backlog_size,
            "latency_p50_s": p50(records),
            "latency_p99_s": p99(records),
        }


async def serve_async(
    config: ServeConfig, *, ready=None
) -> None:
    """Run the HTTP gateway until cancelled (the ``repro serve`` body).

    ``ready`` is an optional callback invoked with the
    :class:`~repro.serving.gateway.HttpGateway` once it is listening
    (tests use it to learn the bound port).
    """
    from repro.serving.gateway import HttpGateway

    run = await LiveRun(config).start()
    gateway = HttpGateway(run, host=config.host, port=config.port)
    await gateway.start()
    try:
        if ready is not None:
            ready(gateway)
        await gateway.serve_forever()
    finally:
        await gateway.stop()
        await run.stop()


def serve(*, config: ServeConfig) -> None:
    """Blocking entry point: serve ``config`` until interrupted."""
    try:
        asyncio.run(serve_async(config))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
