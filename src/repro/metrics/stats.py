"""Statistical significance helpers (paper Section 7).

The paper reports confidence intervals, p-values (Welch's t-test), and
Cohen's d effect sizes when comparing schemes across repeated runs. These
are implemented with numpy only; the p-value uses a normal approximation
to the t distribution unless scipy is importable (it is in the reference
environment), in which case the exact distribution is used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """Two-sided confidence interval around a sample mean."""

    mean: float
    lower: float
    upper: float
    level: float

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0


def confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation CI of the mean of ``samples``."""
    array = np.asarray(samples, dtype=float)
    if array.size < 2:
        raise ConfigurationError("need at least 2 samples for a confidence interval")
    mean = float(array.mean())
    sem = float(array.std(ddof=1) / math.sqrt(array.size))
    z = _normal_ppf(0.5 + level / 2.0)
    return ConfidenceInterval(mean, mean - z * sem, mean + z * sem, level)


def cohens_d(a: Sequence[float], b: Sequence[float]) -> float:
    """Cohen's d with pooled standard deviation.

    The paper reports values from 7.80 up to 304.37 between schemes —
    "very large" effects, which arise naturally when two deterministic
    policies differ systematically and per-seed noise is tiny.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size < 2 or y.size < 2:
        raise ConfigurationError("need at least 2 samples per group")
    pooled_var = (
        (x.size - 1) * x.var(ddof=1) + (y.size - 1) * y.var(ddof=1)
    ) / (x.size + y.size - 2)
    if pooled_var == 0:
        return math.inf if x.mean() != y.mean() else 0.0
    return float((x.mean() - y.mean()) / math.sqrt(pooled_var))


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Welch's unequal-variance t-test; returns ``(t_statistic, p_value)``.

    The p-value is two-sided.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size < 2 or y.size < 2:
        raise ConfigurationError("need at least 2 samples per group")
    vx, vy = x.var(ddof=1), y.var(ddof=1)
    if vx == 0 and vy == 0:
        if x.mean() == y.mean():
            return 0.0, 1.0
        return math.inf, 0.0
    se = math.sqrt(vx / x.size + vy / y.size)
    t = float((x.mean() - y.mean()) / se)
    df = (vx / x.size + vy / y.size) ** 2 / (
        (vx / x.size) ** 2 / (x.size - 1) + (vy / y.size) ** 2 / (y.size - 1)
    )
    return t, _two_sided_t_pvalue(t, df)


def _two_sided_t_pvalue(t: float, df: float) -> float:
    try:
        from scipy import stats as scipy_stats

        return float(2.0 * scipy_stats.t.sf(abs(t), df))
    except ImportError:  # pragma: no cover - scipy present in reference env
        return 2.0 * (1.0 - _normal_cdf(abs(t)))


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _normal_ppf(p: float) -> float:
    """Inverse normal CDF via bisection (no scipy dependency needed)."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError("p must lie in (0, 1)")
    lo, hi = -10.0, 10.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if _normal_cdf(mid) < p:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
