"""SLO compliance (the paper's headline metric).

"SLO compliance will refer to the percentage of strict requests meeting
their SLO targets" (Section 2.2). Dropped strict requests (lost to an
eviction and never served) count as violations.
"""

from __future__ import annotations

from typing import Iterable

from repro.metrics.records import RecordCollector, RequestRecord


def slo_compliance(
    records: Iterable[RequestRecord], *, dropped_strict: int = 0
) -> float:
    """Fraction (0–1) of strict requests that met their deadline.

    Non-strict records in the input are ignored. Returns ``nan`` when no
    strict requests exist (SLO compliance "is not a valid metric for BE
    requests", Section 6.2).
    """
    met = 0
    total = dropped_strict
    for record in records:
        if not record.strict:
            continue
        total += 1
        if record.slo_met:
            met += 1
    if total == 0:
        return float("nan")
    return met / total


def slo_compliance_from_counts(
    met: int, strict_total: int, *, dropped_strict: int = 0
) -> float:
    """:func:`slo_compliance` from running counters (streaming mode).

    ``met`` strict requests met their deadline out of ``strict_total``
    served; ``dropped_strict`` count as violations, exactly as in the
    record-based computation.
    """
    total = strict_total + dropped_strict
    if total == 0:
        return float("nan")
    return met / total


def slo_compliance_percent(
    records: Iterable[RequestRecord], *, dropped_strict: int = 0
) -> float:
    """:func:`slo_compliance` scaled to 0–100 (how the paper reports it)."""
    return 100.0 * slo_compliance(records, dropped_strict=dropped_strict)


def collector_compliance(collector: RecordCollector) -> float:
    """Compliance over a whole run, counting dropped requests against it."""
    return slo_compliance(
        collector.strict(), dropped_strict=collector.dropped_requests
    )


def violations(records: Iterable[RequestRecord]) -> list[RequestRecord]:
    """The strict records that missed their deadline."""
    return [r for r in records if r.strict and r.slo_met is False]
