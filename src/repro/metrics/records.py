"""Per-request outcome records and their collector.

Every completed request yields one :class:`RequestRecord` carrying the full
latency decomposition the paper plots in its tail-latency breakdown figures
(Figures 2, 6, 11):

``latency = batch_wait + cold_start + queue_delay + exec_min + deficiency
+ interference``

where ``exec_min`` is the paper's "min possible time" (solo execution on
7g), ``deficiency`` the extra execution time from running on a smaller
slice, and ``interference`` the extra time from bandwidth contention with
co-located jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """Outcome of one served request.

    ``slots=True``: million-request hyperscale runs hold one of these per
    completion, and dropping the per-instance ``__dict__`` cuts the
    record's footprint roughly in half.
    """

    model: str
    strict: bool
    arrival: float
    completion: float
    deadline: float | None
    batch_wait: float
    cold_start: float
    queue_delay: float
    exec_min: float
    deficiency: float
    interference: float
    #: Owning tenant (the implicit "default" tenant when tenancy is off).
    tenant: str = "default"
    #: Owning workflow id and stage name for pipeline stage requests
    #: (see repro.pipelines); None on the default single-stage path.
    workflow: str | None = None
    stage: str | None = None

    @property
    def latency(self) -> float:
        """End-to-end response time."""
        return self.completion - self.arrival

    @property
    def slo_met(self) -> bool | None:
        """True/False for strict requests; None for best-effort."""
        if self.deadline is None:
            return None
        return self.completion <= self.deadline + 1e-12

    def components(self) -> dict[str, float]:
        """The additive latency decomposition (sums to :attr:`latency`)."""
        return {
            "batch_wait": self.batch_wait,
            "cold_start": self.cold_start,
            "queue_delay": self.queue_delay,
            "exec_min": self.exec_min,
            "deficiency": self.deficiency,
            "interference": self.interference,
        }


@dataclass(frozen=True, slots=True)
class RejectionRecord:
    """One request turned away at the gateway by tenant admission control.

    Rejections are a terminal outcome distinct from drops: the platform
    never accepted the request, so it does not count against request
    conservation or SLO attainment — but per-tenant reporting surfaces it
    (a tenant whose traffic is being shed should see that, not a
    mysteriously low throughput).
    """

    tenant: str
    model: str
    strict: bool
    arrival: float


class RecordCollector:
    """Accumulates request records during a run and serves filtered views."""

    def __init__(self) -> None:
        self._records: list[RequestRecord] = []
        self._rejections: list[RejectionRecord] = []
        self.dropped_requests = 0

    def add(self, record: RequestRecord) -> None:
        """Store one completed request's outcome."""
        self._records.append(record)

    def add_rejection(self, record: RejectionRecord) -> None:
        """Store one gateway rejection (tenant quota enforcement)."""
        self._rejections.append(record)

    @property
    def rejections(self) -> tuple[RejectionRecord, ...]:
        return tuple(self._rejections)

    def mark_dropped(self, count: int = 1) -> None:
        """Count requests lost (e.g. stranded on an evicted node and never
        resubmitted); they count against SLO compliance."""
        self.dropped_requests += count

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RequestRecord]:
        return iter(self._records)

    @property
    def records(self) -> tuple[RequestRecord, ...]:
        return tuple(self._records)

    def strict(self) -> list[RequestRecord]:
        """Records of strict (SLO-bound) requests."""
        return [r for r in self._records if r.strict]

    def best_effort(self) -> list[RequestRecord]:
        """Records of best-effort requests."""
        return [r for r in self._records if not r.strict]

    def for_model(self, model: str) -> list[RequestRecord]:
        """Records for one model name."""
        return [r for r in self._records if r.model == model]

    def for_tenant(self, tenant: str) -> list[RequestRecord]:
        """Records for one tenant id."""
        return [r for r in self._records if r.tenant == tenant]

    def latencies(self, records: Iterable[RequestRecord] | None = None) -> np.ndarray:
        """Latency array over ``records`` (default: everything collected)."""
        pool = self._records if records is None else list(records)
        return np.array([r.latency for r in pool], dtype=float)
