"""Run-level metric summaries and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.breakdown import LatencyBreakdown
from repro.metrics.records import RequestRecord


@dataclass(frozen=True)
class RunSummary:
    """Everything the paper reports about one (scheme, workload) run."""

    scheme: str
    strict_model: str
    requests_served: int
    strict_requests: int
    slo_compliance: float  # 0..1, NaN if no strict requests
    strict_p50: float
    strict_p99: float
    be_p50: float
    be_p99: float
    tail_breakdown: LatencyBreakdown
    strict_throughput_per_gpu: float
    total_throughput_per_gpu: float
    gpu_busy_fraction: float
    gpu_any_busy_fraction: float
    memory_fraction: float
    reconfigurations: int
    total_cost: float
    cost_savings_fraction: float
    dropped_requests: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def slo_percent(self) -> float:
        """SLO compliance as the paper prints it (percent)."""
        return 100.0 * self.slo_compliance

    def row(self) -> dict[str, float | str | int]:
        """A flat dict suitable for table rendering."""
        return {
            "scheme": self.scheme,
            "model": self.strict_model,
            "slo_%": round(self.slo_percent, 2),
            "strict_p50_ms": round(self.strict_p50 * 1000, 1),
            "strict_p99_ms": round(self.strict_p99 * 1000, 1),
            "be_p99_ms": round(self.be_p99 * 1000, 1),
            "thru_strict_rps_gpu": round(self.strict_throughput_per_gpu, 2),
            "gpu_util_%": round(self.gpu_any_busy_fraction * 100, 1),
            "mem_util_%": round(self.memory_fraction * 100, 1),
            "cost_$": round(self.total_cost, 4),
            "savings_%": round(self.cost_savings_fraction * 100, 1),
        }


def format_table(rows: list[dict], *, title: str = "") -> str:
    """Render dict rows as a fixed-width text table (bench output)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def filter_window(
    records: list[RequestRecord], start: float, end: float | None = None
) -> list[RequestRecord]:
    """Records whose *arrival* falls inside ``[start, end)``.

    Experiments exclude a warm-up prefix this way, so cold-start
    transients at t=0 do not pollute steady-state metrics.
    """
    return [
        r
        for r in records
        if r.arrival >= start and (end is None or r.arrival < end)
    ]


def partition_window(
    records: list[RequestRecord], start: float, end: float
) -> tuple[list[RequestRecord], list[RequestRecord], list[RequestRecord], list[RequestRecord]]:
    """One-pass split of ``records`` for run summarisation.

    Returns ``(measured, strict, best_effort, completed_in_window)`` where
    ``measured`` matches :func:`filter_window` and the other three are the
    views :func:`repro.experiments.runner` derives from it. Fusing the four
    comprehensions into one loop halves the record-summarisation time on
    large runs (each record is touched once instead of four times).
    """
    measured: list[RequestRecord] = []
    strict: list[RequestRecord] = []
    best_effort: list[RequestRecord] = []
    completed: list[RequestRecord] = []
    for r in records:
        arrival = r.arrival
        if arrival < start or arrival >= end:
            continue
        measured.append(r)
        if r.strict:
            strict.append(r)
        else:
            best_effort.append(r)
        if r.completion < end:
            completed.append(r)
    return measured, strict, best_effort, completed
