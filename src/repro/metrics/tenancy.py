"""Per-tenant outcome metrics: attainment, fairness, and revenue.

A multi-tenant run is only as good as its *worst-served paying tenant*:
aggregate SLO compliance can look healthy while one tenant absorbs every
violation. :func:`tenancy_report` slices the measured window per tenant
and adds two cross-tenant aggregates:

- **Jain's fairness index** over per-tenant strict SLO attainment —
  ``(Σx)² / (n·Σx²)``, 1.0 when every tenant attains equally, → 1/n as
  one tenant monopolises service;
- **revenue-weighted cost** — the run's cluster cost divided by the
  billing-weighted request volume, i.e. dollars spent per unit of revenue
  earned. A platform can cut cost *and* lose money if the shed requests
  were the premium tenant's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.metrics.latency import p50, p99
from repro.metrics.records import RejectionRecord, RequestRecord
from repro.metrics.slo import slo_compliance
from repro.tenancy.model import TenantSet


@dataclass(frozen=True)
class TenantOutcome:
    """The measured window's outcome for one tenant."""

    tenant_id: str
    requests: int
    strict_requests: int
    #: Fraction (0–1) of strict requests meeting their deadline; NaN when
    #: the tenant had no strict requests in the window.
    slo_attainment: float
    p50: float
    p99: float
    #: Requests turned away at the gateway (quota enforcement).
    rejections: int
    #: Billing-weighted served volume: ``requests × billing_rate``.
    revenue: float

    def to_dict(self) -> dict:
        """JSON-safe representation (CLI ``--json`` output)."""
        return {
            "tenant_id": self.tenant_id,
            "requests": self.requests,
            "strict_requests": self.strict_requests,
            "slo_attainment": self.slo_attainment,
            "p50": self.p50,
            "p99": self.p99,
            "rejections": self.rejections,
            "revenue": self.revenue,
        }


@dataclass(frozen=True)
class TenancyReport:
    """Cross-tenant view of one run's measured window."""

    outcomes: tuple[TenantOutcome, ...]
    #: Jain's index over per-tenant strict SLO attainment (1.0 = equal).
    fairness_index: float
    #: Billing-weighted served request volume across tenants.
    total_revenue: float
    #: The run's total cluster cost (from the cost meter).
    total_cost: float

    def outcome(self, tenant_id: str) -> TenantOutcome:
        """The outcome row for ``tenant_id``."""
        for outcome in self.outcomes:
            if outcome.tenant_id == tenant_id:
                return outcome
        raise ConfigurationError(
            f"no outcome for tenant {tenant_id!r}; reported: "
            f"{[o.tenant_id for o in self.outcomes]}"
        )

    def attainment_by_tenant(self) -> dict[str, float]:
        """Per-tenant strict SLO attainment (0–1; NaN = no strict load)."""
        return {o.tenant_id: o.slo_attainment for o in self.outcomes}

    @property
    def revenue_weighted_cost(self) -> float:
        """Cost per unit of revenue earned; NaN with zero revenue."""
        if self.total_revenue <= 0:
            return float("nan")
        return self.total_cost / self.total_revenue

    def to_dict(self) -> dict:
        """JSON-safe representation (CLI ``--json`` output)."""
        return {
            "outcomes": [o.to_dict() for o in self.outcomes],
            "fairness_index": self.fairness_index,
            "total_revenue": self.total_revenue,
            "total_cost": self.total_cost,
            "revenue_weighted_cost": self.revenue_weighted_cost,
        }


def jain_index(values: list[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over ``values``.

    Defined as 1.0 for empty input or all-zero allocations (nothing to be
    unfair about).
    """
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum <= 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def tenancy_report(
    tenant_set: TenantSet,
    records: list[RequestRecord],
    rejections: tuple[RejectionRecord, ...] = (),
    *,
    total_cost: float = 0.0,
) -> TenancyReport:
    """Build the per-tenant report for one run's measured window."""
    outcomes: list[TenantOutcome] = []
    attainments: list[float] = []
    total_revenue = 0.0
    for tenant in tenant_set:
        mine = [r for r in records if r.tenant == tenant.tenant_id]
        strict = [r for r in mine if r.strict]
        attainment = slo_compliance(strict)
        rejected = sum(
            1 for r in rejections if r.tenant == tenant.tenant_id
        )
        revenue = len(mine) * tenant.billing_rate
        total_revenue += revenue
        if strict:
            attainments.append(attainment)
        outcomes.append(
            TenantOutcome(
                tenant_id=tenant.tenant_id,
                requests=len(mine),
                strict_requests=len(strict),
                slo_attainment=attainment,
                p50=p50(mine),
                p99=p99(mine),
                rejections=rejected,
                revenue=revenue,
            )
        )
    return TenancyReport(
        outcomes=tuple(outcomes),
        fairness_index=jain_index(attainments),
        total_revenue=total_revenue,
        total_cost=total_cost,
    )
