"""Latency statistics: percentiles, tails, and CDFs (Figures 6, 8)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.metrics.records import RequestRecord


def percentile(latencies: Sequence[float] | np.ndarray, q: float) -> float:
    """The q-th percentile (0–100) of ``latencies``; NaN when empty."""
    array = np.asarray(latencies, dtype=float)
    if array.size == 0:
        return float("nan")
    return float(np.percentile(array, q))


def p50(records: Iterable[RequestRecord]) -> float:
    """Median end-to-end latency."""
    return percentile([r.latency for r in records], 50.0)


def p99(records: Iterable[RequestRecord]) -> float:
    """Tail (P99) end-to-end latency — the paper's headline tail metric."""
    return percentile([r.latency for r in records], 99.0)


def mean_latency(records: Iterable[RequestRecord]) -> float:
    """Mean end-to-end latency; NaN when empty."""
    latencies = [r.latency for r in records]
    if not latencies:
        return float("nan")
    return float(np.mean(latencies))


def latency_cdf(
    records: Iterable[RequestRecord], points: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of end-to-end latency (Figure 8).

    Returns ``(latency_values, cumulative_fraction)`` arrays of length
    ``points`` (or fewer for tiny samples). Every returned pair lies
    exactly on the empirical CDF ``F(x) = #{latency <= x} / N``: the
    fraction grid runs from ``1/n`` to ``1`` (the sample minimum has
    cumulative mass ``1/N``, never 0 — an earlier version anchored the
    grid at 0.0, which overstated the low tail by one sample's worth),
    and values are the order statistics at those fractions (no
    interpolation between samples).
    """
    latencies = np.sort(np.asarray([r.latency for r in records], dtype=float))
    if latencies.size == 0:
        return np.empty(0), np.empty(0)
    n = min(points, latencies.size)
    grid = np.linspace(1.0 / n, 1.0, n)
    # Order statistics: value at nominal fraction f is x_(ceil(f*N)), the
    # inverted-CDF quantile. The *returned* fraction is the ECDF evaluated
    # at that value — #{latency <= value} / N — so every (value, fraction)
    # pair sits exactly on the ECDF step even when the curve is
    # subsampled (points < N) or the sample has ties.
    indices = np.ceil(grid * latencies.size).astype(int) - 1
    values = latencies[indices]
    fractions = (
        np.searchsorted(latencies, values, side="right") / latencies.size
    )
    return values, fractions


def tail_records(
    records: Sequence[RequestRecord], q: float = 99.0
) -> list[RequestRecord]:
    """The records at or above the q-th latency percentile.

    These are the requests whose component breakdown the paper's
    tail-latency figures decompose.
    """
    if not records:
        return []
    threshold = percentile([r.latency for r in records], q)
    return [r for r in records if r.latency >= threshold]
