"""Latency statistics: percentiles, tails, and CDFs (Figures 6, 8)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.metrics.records import RequestRecord


def percentile(latencies: Sequence[float] | np.ndarray, q: float) -> float:
    """The q-th percentile (0–100) of ``latencies``; NaN when empty."""
    array = np.asarray(latencies, dtype=float)
    if array.size == 0:
        return float("nan")
    return float(np.percentile(array, q))


def p50(records: Iterable[RequestRecord]) -> float:
    """Median end-to-end latency."""
    return percentile([r.latency for r in records], 50.0)


def p99(records: Iterable[RequestRecord]) -> float:
    """Tail (P99) end-to-end latency — the paper's headline tail metric."""
    return percentile([r.latency for r in records], 99.0)


def mean_latency(records: Iterable[RequestRecord]) -> float:
    """Mean end-to-end latency; NaN when empty."""
    latencies = [r.latency for r in records]
    if not latencies:
        return float("nan")
    return float(np.mean(latencies))


def latency_cdf(
    records: Iterable[RequestRecord], points: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of end-to-end latency (Figure 8).

    Returns ``(latency_values, cumulative_fraction)`` arrays of length
    ``points`` (or fewer for tiny samples), evaluated on evenly spaced
    quantiles so the curve is directly plottable.
    """
    latencies = np.sort(np.asarray([r.latency for r in records], dtype=float))
    if latencies.size == 0:
        return np.empty(0), np.empty(0)
    n = min(points, latencies.size)
    if n == 1:
        # A one-point linspace would yield fraction [0.0], a CDF that
        # never reaches 1; the curve must terminate at cumulative 1.0.
        fractions = np.array([1.0])
    else:
        fractions = np.linspace(0.0, 1.0, n)
    # Quantile positions over the sorted sample.
    values = np.quantile(latencies, fractions)
    return values, fractions


def tail_records(
    records: Sequence[RequestRecord], q: float = 99.0
) -> list[RequestRecord]:
    """The records at or above the q-th latency percentile.

    These are the requests whose component breakdown the paper's
    tail-latency figures decompose.
    """
    if not records:
        return []
    threshold = percentile([r.latency for r in records], q)
    return [r for r in records if r.latency >= threshold]
