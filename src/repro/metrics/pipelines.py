"""Pipeline outcome metrics: end-to-end attainment plus per-stage tails.

A pipeline run has two truths and both matter. The *workflow* view is
the SLO that was actually promised: did the whole chain finish inside
its end-to-end deadline (a workflow still incomplete at drain is a miss,
not a non-event). The *stage* view is where the time went: per-stage
latency percentiles, per-stage deadline attainment, and mean queueing —
the breakdown that shows *which* stage a policy sacrificed.
:func:`pipeline_report` assembles both from the runtime's workflow
ledger and the run's stage-level request records, restricted to
workflows that *arrived* in the measured window (stages released after
the window close still belong to their workflow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.metrics.latency import p50, p99, percentile
from repro.metrics.records import RequestRecord
from repro.metrics.slo import slo_compliance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipelines.runtime import PipelineRuntime

#: Deadline comparison slack (matches RequestRecord.slo_met).
_DEADLINE_EPS = 1e-12


@dataclass(frozen=True)
class StageOutcome:
    """The measured window's outcome for one pipeline stage."""

    stage: str
    model: str
    requests: int
    #: Stage-level latency percentiles (release → completion).
    p50: float
    p99: float
    #: Fraction of the stage's strict requests meeting their *stage*
    #: deadline (the policy-assigned one); NaN with no strict requests.
    stage_attainment: float
    #: Mean scheduler queueing delay of the stage's requests.
    mean_queue_delay: float

    def to_dict(self) -> dict:
        """JSON-safe representation (CLI ``--json`` output)."""
        return {
            "stage": self.stage,
            "model": self.model,
            "requests": self.requests,
            "p50": self.p50,
            "p99": self.p99,
            "stage_attainment": self.stage_attainment,
            "mean_queue_delay": self.mean_queue_delay,
        }


@dataclass(frozen=True)
class PipelineReport:
    """Workflow-level view of one run's measured window."""

    pipeline: str
    policy: str
    #: Workflows arriving in the window.
    workflows: int
    strict_workflows: int
    #: Workflows whose every sink completed (by drain end).
    completed: int
    #: Workflows still unfinished at drain — every strict one is an
    #: end-to-end SLO miss.
    incomplete: int
    #: Fraction of strict workflows finishing within their end-to-end
    #: deadline (incomplete counts as a miss); NaN with no strict load.
    e2e_attainment: float
    #: End-to-end latency percentiles over completed strict workflows.
    e2e_p50: float
    e2e_p99: float
    per_stage: tuple[StageOutcome, ...]
    #: Runtime counters (releases, rebudgets, stage retries, ...).
    stats: dict

    def stage(self, name: str) -> StageOutcome:
        """The outcome row for stage ``name``."""
        for outcome in self.per_stage:
            if outcome.stage == name:
                return outcome
        raise KeyError(name)

    def to_dict(self) -> dict:
        """JSON-safe representation (CLI ``--json``, CI artifact)."""
        return {
            "pipeline": self.pipeline,
            "policy": self.policy,
            "workflows": self.workflows,
            "strict_workflows": self.strict_workflows,
            "completed": self.completed,
            "incomplete": self.incomplete,
            "e2e_attainment": self.e2e_attainment,
            "e2e_p50": self.e2e_p50,
            "e2e_p99": self.e2e_p99,
            "per_stage": [outcome.to_dict() for outcome in self.per_stage],
            "stats": dict(self.stats),
        }

    def describe(self) -> str:
        """Multi-line text rendering for the CLI."""
        attainment = (
            f"{100.0 * self.e2e_attainment:5.1f}%"
            if self.e2e_attainment == self.e2e_attainment  # not NaN
            else "  n/a"
        )
        lines = [
            f"pipeline {self.pipeline} [{self.policy}]: "
            f"e2e slo={attainment}  "
            f"workflows={self.workflows} (strict={self.strict_workflows}, "
            f"incomplete={self.incomplete})  "
            f"e2e p50={self.e2e_p50:.3f}s p99={self.e2e_p99:.3f}s"
        ]
        for outcome in self.per_stage:
            shown = (
                f"{100.0 * outcome.stage_attainment:5.1f}%"
                if outcome.stage_attainment == outcome.stage_attainment
                else "  n/a"
            )
            lines.append(
                f"  stage {outcome.stage:<12} ({outcome.model}) "
                f"n={outcome.requests:>5}  slo={shown}  "
                f"p99={outcome.p99:.3f}s  queue={outcome.mean_queue_delay:.3f}s"
            )
        lines.append(
            "  releases={stages_released} rebudgets={rebudgets} "
            "retries={stage_retries}".format(**self.stats)
        )
        return "\n".join(lines)


def pipeline_report(
    runtime: "PipelineRuntime",
    records: Iterable[RequestRecord],
    *,
    window_start: float,
    window_end: float,
) -> PipelineReport:
    """Build the workflow report for one run's measured window."""
    compiled = runtime.compiled
    # One pass over the ledger: the loop runs once per workflow of the
    # whole trace, so the window filter, attainment counts, and latency
    # samples are all collected together.
    measured_ids: set[str] = set()
    n_workflows = n_strict = n_completed = on_time = 0
    strict_latencies: list[float] = []
    for state in runtime.workflows.values():
        arrival = state.arrival
        if not window_start <= arrival < window_end:
            continue
        n_workflows += 1
        measured_ids.add(state.workflow_id)
        finished_at = state.finished_at
        if finished_at is not None:
            n_completed += 1
        if state.strict:
            n_strict += 1
            if finished_at is not None:
                strict_latencies.append(finished_at - arrival)
                deadline = state.deadline
                if deadline is not None and finished_at <= deadline + _DEADLINE_EPS:
                    on_time += 1
    e2e_attainment = on_time / n_strict if n_strict else float("nan")
    by_stage: dict[str, list[RequestRecord]] = {
        name: [] for name in compiled.order
    }
    for record in records:
        if record.workflow in measured_ids and record.stage in by_stage:
            by_stage[record.stage].append(record)
    per_stage = []
    for name in compiled.order:
        mine = by_stage[name]
        strict_records = [r for r in mine if r.strict]
        queue_delays = [r.queue_delay for r in mine]
        per_stage.append(
            StageOutcome(
                stage=name,
                model=compiled.profiles[name].name,
                requests=len(mine),
                p50=p50(mine),
                p99=p99(mine),
                stage_attainment=slo_compliance(strict_records),
                mean_queue_delay=(
                    sum(queue_delays) / len(queue_delays)
                    if queue_delays
                    else float("nan")
                ),
            )
        )
    return PipelineReport(
        pipeline=runtime.spec.name,
        policy=runtime.policy,
        workflows=n_workflows,
        strict_workflows=n_strict,
        completed=n_completed,
        incomplete=n_workflows - n_completed,
        e2e_attainment=e2e_attainment,
        e2e_p50=percentile(strict_latencies, 50.0),
        e2e_p99=percentile(strict_latencies, 99.0),
        per_stage=tuple(per_stage),
        stats=runtime.stats(),
    )
