"""Streaming metrics: quantile sketches and the incremental collector.

A default run keeps every :class:`~repro.metrics.records.RequestRecord`
and summarises at the end — exact, but a million-request hyperscale run
would hold gigabytes of records. This module provides the O(1)-memory
alternative:

- :class:`QuantileDigest` — a deterministic, mergeable quantile sketch
  (t-digest family, uniform weight buckets). Exact below
  ``max_centroids`` samples; above, quantile-space error is bounded by
  one bucket: ``|F(q̂) - q| <= (capacity + w_max) / W`` where
  ``capacity = W / max_centroids`` and ``w_max`` is the largest single
  insert weight — about ``1/max_centroids`` for unit weights (~0.1% at
  the default 1024 centroids). See ``docs/hyperscale.md``.
- :class:`StreamingCollector` — a drop-in
  :class:`~repro.metrics.records.RecordCollector` that folds each record
  into running counters, latency digests, and a bounded worst-strict-
  records heap instead of storing it, then feeds the existing
  slo/latency/throughput/tenancy reports.

Determinism: both classes are pure functions of their insertion
sequence — no RNG, no wall clock, no id()-order iteration — so the
sharded hyperscale merge (per-node digests concatenated in node order,
compressed once at top level) is bit-identical to a serial run.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.breakdown import LatencyBreakdown, breakdown
from repro.metrics.records import (
    RecordCollector,
    RejectionRecord,
    RequestRecord,
)
from repro.metrics.slo import slo_compliance_from_counts

#: Default number of retained centroids. 1024 bounds quantile-space error
#: near 0.1% for unit weights — p99 on a million-request run resolves to
#: p98.9–p99.1 — while keeping a digest under 20 kB.
DEFAULT_MAX_CENTROIDS = 1024

#: Unsorted inserts buffered before a merge pass (amortises the sort).
_BUFFER_SIZE = 4096


class QuantileDigest:
    """Deterministic mergeable quantile sketch over weighted values.

    Centroids are kept sorted by mean; compression walks the sorted run
    and buckets by cumulative weight (``W / max_centroids`` per bucket),
    replacing each bucket with its weighted mean. The whole pipeline is
    a pure function of the insertion sequence, which is what lets a
    sharded run rebuild the exact serial digest by replaying per-node
    centroid runs in node order.

    Quantile queries use inverted-CDF semantics (the first centroid whose
    cumulative weight reaches ``q·W``), so while the sample count is at
    most ``max_centroids`` every answer is an exact order statistic.
    """

    __slots__ = (
        "max_centroids",
        "_means",
        "_weights",
        "_buffer_values",
        "_buffer_weights",
        "count",
    )

    def __init__(self, max_centroids: int = DEFAULT_MAX_CENTROIDS) -> None:
        if max_centroids < 2:
            raise ConfigurationError("max_centroids must be >= 2")
        self.max_centroids = max_centroids
        self._means = np.empty(0, dtype=float)
        self._weights = np.empty(0, dtype=float)
        self._buffer_values: list[float] = []
        self._buffer_weights: list[float] = []
        #: Number of ``add``/``add_many`` data points folded in (not the
        #: total weight — see :attr:`total_weight`).
        self.count = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, value: float, weight: float = 1.0) -> None:
        """Fold one weighted value into the sketch."""
        if weight <= 0:
            if weight == 0:
                return
            raise ConfigurationError("weight must be non-negative")
        self._buffer_values.append(float(value))
        self._buffer_weights.append(float(weight))
        self.count += 1
        if len(self._buffer_values) >= _BUFFER_SIZE:
            self._flush()

    def add_many(
        self,
        values: Sequence[float] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        """Fold a batch of values (zero-weight entries are skipped)."""
        values = np.asarray(values, dtype=float).ravel()
        if weights is None:
            kept = values
            kept_weights = np.ones_like(kept)
        else:
            weights = np.asarray(weights, dtype=float).ravel()
            if weights.shape != values.shape:
                raise ConfigurationError(
                    "values and weights must have the same length"
                )
            if np.any(weights < 0):
                raise ConfigurationError("weight must be non-negative")
            mask = weights > 0
            kept = values[mask]
            kept_weights = weights[mask]
        if kept.size == 0:
            return
        self._buffer_values.extend(kept.tolist())
        self._buffer_weights.extend(kept_weights.tolist())
        self.count += int(kept.size)
        if len(self._buffer_values) >= _BUFFER_SIZE:
            self._flush()

    def absorb(
        self, means: np.ndarray, weights: np.ndarray
    ) -> None:
        """Fold another digest's centroid run (its :meth:`to_arrays`).

        Feeding per-node centroid runs in node order and compressing once
        reproduces the serial digest exactly — the sharded merge protocol
        (``docs/hyperscale.md``).
        """
        self.add_many(means, weights)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if not self._buffer_values:
            return
        values = np.concatenate(
            [self._means, np.asarray(self._buffer_values, dtype=float)]
        )
        weights = np.concatenate(
            [self._weights, np.asarray(self._buffer_weights, dtype=float)]
        )
        self._buffer_values.clear()
        self._buffer_weights.clear()
        # Stable sort: equal values keep insertion order, so the layout
        # is a pure function of the insertion sequence.
        order = np.argsort(values, kind="stable")
        values = values[order]
        weights = weights[order]
        if values.size > self.max_centroids:
            total = float(weights.sum())
            capacity = total / self.max_centroids
            # Midpoint rule: a centroid belongs to the bucket its weight
            # midpoint falls in. Deterministic, and keeps every centroid
            # a singleton while total weight < max_centroids buckets.
            midpoints = np.cumsum(weights) - weights / 2.0
            buckets = np.minimum(
                (midpoints / capacity).astype(np.int64),
                self.max_centroids - 1,
            )
            bucket_weight = np.bincount(
                buckets, weights=weights, minlength=self.max_centroids
            )
            bucket_mass = np.bincount(
                buckets, weights=weights * values, minlength=self.max_centroids
            )
            occupied = bucket_weight > 0
            weights = bucket_weight[occupied]
            values = bucket_mass[occupied] / weights
        self._means = values
        self._weights = weights

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> float:
        """Sum of all folded weights."""
        return float(self._weights.sum()) + float(
            np.sum(self._buffer_weights) if self._buffer_weights else 0.0
        )

    def quantile(self, q: float) -> float:
        """Inverted-CDF quantile at ``q`` in [0, 1]; NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("q must lie in [0, 1]")
        self._flush()
        if self._means.size == 0:
            return float("nan")
        cumulative = np.cumsum(self._weights)
        target = q * cumulative[-1]
        index = int(np.searchsorted(cumulative, target, side="left"))
        index = min(index, self._means.size - 1)
        return float(self._means[index])

    def percentile(self, p: float) -> float:
        """:meth:`quantile` on the 0–100 scale."""
        return self.quantile(p / 100.0)

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The centroid run ``(means, weights)`` — picklable, mergeable."""
        self._flush()
        return self._means.copy(), self._weights.copy()

    def state_digest(self) -> str:
        """SHA-256 over the centroid run — the bit-identity fingerprint."""
        self._flush()
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self._means).tobytes())
        digest.update(np.ascontiguousarray(self._weights).tobytes())
        return digest.hexdigest()

    def __len__(self) -> int:
        return self._means.size + len(self._buffer_values)


class StreamingCollector(RecordCollector):
    """A bounded-memory :class:`RecordCollector` for million-request runs.

    Instead of storing records it folds each one into:

    - running counters over the measured window ``[window_start,
      window_end)`` — totals, strict/BE splits, SLO met counts, and
      completed-in-window counts (the throughput numerator);
    - strict and best-effort latency :class:`QuantileDigest` sketches;
    - per-tenant counters + latency digests (feeding the tenancy report);
    - a bounded min-heap of the ``tail_keep`` worst strict records, from
      which the tail breakdown is computed (exact whenever the strict
      tail above p99 fits in ``tail_keep``; the worst-``tail_keep``
      approximation otherwise).

    ``records``/``strict()``/... views are empty by design — callers that
    need raw records should run without streaming mode. Rejections are
    counted per tenant, not stored.
    """

    def __init__(
        self,
        window_start: float = 0.0,
        window_end: float = math.inf,
        *,
        max_centroids: int = DEFAULT_MAX_CENTROIDS,
        tail_keep: int = 4096,
    ) -> None:
        super().__init__()
        if window_end <= window_start:
            raise ConfigurationError("window_end must exceed window_start")
        if tail_keep < 1:
            raise ConfigurationError("tail_keep must be >= 1")
        self.window_start = window_start
        self.window_end = window_end
        self.tail_keep = tail_keep
        self.total_seen = 0
        self.measured_count = 0
        self.strict_count = 0
        self.be_count = 0
        self.slo_met_count = 0
        self.completed_in_window = 0
        self.completed_strict_in_window = 0
        self.strict_digest = QuantileDigest(max_centroids)
        self.be_digest = QuantileDigest(max_centroids)
        self._tenants: dict[str, dict] = {}
        self._tail: list[tuple[float, int, RequestRecord]] = []
        self._tail_seq = 0

    # ------------------------------------------------------------------
    # Ingest (platform-facing surface, same as RecordCollector)
    # ------------------------------------------------------------------
    def add(self, record: RequestRecord) -> None:
        """Fold one completed request's outcome; the record is not kept."""
        self.total_seen += 1
        arrival = record.arrival
        if arrival < self.window_start or arrival >= self.window_end:
            return
        self.measured_count += 1
        latency = record.latency
        tenant = self._tenant_state(record.tenant)
        tenant["requests"] += 1
        tenant["digest"].add(latency)
        if record.strict:
            self.strict_count += 1
            tenant["strict"] += 1
            self.strict_digest.add(latency)
            if record.slo_met:
                self.slo_met_count += 1
                tenant["slo_met"] += 1
            self._keep_tail(latency, record)
        else:
            self.be_count += 1
            self.be_digest.add(latency)
        if record.completion < self.window_end:
            self.completed_in_window += 1
            if record.strict:
                self.completed_strict_in_window += 1

    def add_rejection(self, record: RejectionRecord) -> None:
        """Count a gateway rejection per tenant; the record is not kept."""
        self._tenant_state(record.tenant)["rejections"] += 1

    def _tenant_state(self, tenant: str) -> dict:
        state = self._tenants.get(tenant)
        if state is None:
            state = {
                "requests": 0,
                "strict": 0,
                "slo_met": 0,
                "rejections": 0,
                "digest": QuantileDigest(256),
            }
            self._tenants[tenant] = state
        return state

    def _keep_tail(self, latency: float, record: RequestRecord) -> None:
        self._tail_seq += 1
        entry = (latency, self._tail_seq, record)
        if len(self._tail) < self.tail_keep:
            heapq.heappush(self._tail, entry)
        elif entry > self._tail[0]:
            heapq.heapreplace(self._tail, entry)

    # ------------------------------------------------------------------
    # Report surface (consumed by the experiment runner)
    # ------------------------------------------------------------------
    def slo_compliance(self, *, dropped_strict: int = 0) -> float:
        """Windowed strict SLO compliance from the running counters."""
        return slo_compliance_from_counts(
            self.slo_met_count, self.strict_count, dropped_strict=dropped_strict
        )

    def strict_percentile(self, p: float) -> float:
        """Strict latency percentile from the sketch (NaN when empty)."""
        return self.strict_digest.percentile(p)

    def be_percentile(self, p: float) -> float:
        """Best-effort latency percentile from the sketch (NaN when empty)."""
        return self.be_digest.percentile(p)

    def strict_tail_records(self, q: float = 99.0) -> list[RequestRecord]:
        """The retained strict records at or above the ``q``-th percentile.

        The threshold comes from the digest over *all* strict records;
        the candidates are the worst ``tail_keep`` retained ones, so the
        result is exact when the true tail fits in ``tail_keep``.
        """
        if not self._tail:
            return []
        threshold = self.strict_digest.percentile(q)
        tail = [
            record
            for latency, _seq, record in self._tail
            if latency >= threshold
        ]
        if not tail:
            # Sketch rounding can push the threshold just past the worst
            # retained record; degrade to the single worst record rather
            # than reporting an empty tail.
            tail = [max(self._tail)[2]]
        return tail

    def tail_breakdown(self, q: float = 99.0) -> LatencyBreakdown:
        """Latency decomposition of the strict tail (streaming analogue
        of :func:`repro.metrics.breakdown.tail_breakdown`)."""
        return breakdown(self.strict_tail_records(q))

    def tenant_counters(self) -> dict[str, dict]:
        """Per-tenant running counters (read-only snapshot, plus digests)."""
        return {
            tenant: dict(state) for tenant, state in self._tenants.items()
        }

    def tenancy_report(self, tenant_set, *, total_cost: float = 0.0):
        """Per-tenant report from counters (streaming analogue of
        :func:`repro.metrics.tenancy.tenancy_report`)."""
        from repro.metrics.tenancy import (
            TenancyReport,
            TenantOutcome,
            jain_index,
        )

        outcomes = []
        attainments = []
        total_revenue = 0.0
        for tenant in tenant_set:
            state = self._tenants.get(tenant.tenant_id)
            requests = state["requests"] if state else 0
            strict = state["strict"] if state else 0
            attainment = slo_compliance_from_counts(
                state["slo_met"] if state else 0, strict
            )
            revenue = requests * tenant.billing_rate
            total_revenue += revenue
            if strict:
                attainments.append(attainment)
            digest = state["digest"] if state else None
            outcomes.append(
                TenantOutcome(
                    tenant_id=tenant.tenant_id,
                    requests=requests,
                    strict_requests=strict,
                    slo_attainment=attainment,
                    p50=digest.percentile(50) if digest else float("nan"),
                    p99=digest.percentile(99) if digest else float("nan"),
                    rejections=state["rejections"] if state else 0,
                    revenue=revenue,
                )
            )
        return TenancyReport(
            outcomes=tuple(outcomes),
            fairness_index=jain_index(attainments),
            total_revenue=total_revenue,
            total_cost=total_cost,
        )
