"""Tail-latency breakdown (Figures 2, 6, 11).

The paper decomposes the P99 latency of each scheme into stacked
components: minimum possible execution time ("Min possible time" = solo 7g
execution), resource-deficiency slowdown, job interference, queueing, and
cold start. We reproduce that by averaging each additive component over
the records in the top latency percentile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.latency import tail_records
from repro.metrics.records import RequestRecord

#: Component order as stacked in the paper's breakdown plots.
COMPONENT_ORDER = (
    "exec_min",
    "deficiency",
    "interference",
    "queue_delay",
    "batch_wait",
    "cold_start",
)


@dataclass(frozen=True)
class LatencyBreakdown:
    """Mean additive latency components over a set of records (seconds)."""

    exec_min: float
    deficiency: float
    interference: float
    queue_delay: float
    batch_wait: float
    cold_start: float

    @property
    def total(self) -> float:
        """Sum of the components (≈ mean latency of the analysed set)."""
        return (
            self.exec_min
            + self.deficiency
            + self.interference
            + self.queue_delay
            + self.batch_wait
            + self.cold_start
        )

    def as_dict(self) -> dict[str, float]:
        """Components keyed by name, in stacking order."""
        return {name: getattr(self, name) for name in COMPONENT_ORDER}

    def fractions(self) -> dict[str, float]:
        """Each component as a fraction of the total (empty total → zeros)."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in COMPONENT_ORDER}
        return {name: getattr(self, name) / total for name in COMPONENT_ORDER}


def breakdown(records: Sequence[RequestRecord]) -> LatencyBreakdown:
    """Mean component breakdown over ``records`` (zeros when empty)."""
    if not records:
        return LatencyBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return LatencyBreakdown(
        exec_min=float(np.mean([r.exec_min for r in records])),
        deficiency=float(np.mean([r.deficiency for r in records])),
        interference=float(np.mean([r.interference for r in records])),
        queue_delay=float(np.mean([r.queue_delay for r in records])),
        batch_wait=float(np.mean([r.batch_wait for r in records])),
        cold_start=float(np.mean([r.cold_start for r in records])),
    )


def tail_breakdown(
    records: Sequence[RequestRecord], q: float = 99.0
) -> LatencyBreakdown:
    """Breakdown of the requests at or above the q-th latency percentile."""
    return breakdown(tail_records(records, q))


def p99_stacked_breakdown(
    records: Sequence[RequestRecord], q: float = 99.0
) -> LatencyBreakdown:
    """Tail breakdown rescaled so its components sum to the P99 latency.

    This is how the paper's figures present the decomposition: stacked
    bars whose total equals the P99 value. The component *proportions*
    come from the tail records' means; the scale is pinned to the q-th
    percentile (the raw tail mean can exceed P99 because the top 1% has
    its own tail).
    """
    raw = breakdown(tail_records(records, q))
    if raw.total <= 0:
        return raw
    target = float(
        np.percentile([r.latency for r in records], q)
    )
    scale = target / raw.total
    return LatencyBreakdown(
        **{name: getattr(raw, name) * scale for name in COMPONENT_ORDER}
    )
