"""Metrics: per-request records, SLO compliance, tails, cost, stats."""

from repro.metrics.breakdown import (
    COMPONENT_ORDER,
    LatencyBreakdown,
    breakdown,
    p99_stacked_breakdown,
    tail_breakdown,
)
from repro.metrics.latency import (
    latency_cdf,
    mean_latency,
    p50,
    p99,
    percentile,
    tail_records,
)
from repro.metrics.records import RecordCollector, RequestRecord
from repro.metrics.slo import (
    collector_compliance,
    slo_compliance,
    slo_compliance_from_counts,
    slo_compliance_percent,
    violations,
)
from repro.metrics.streaming import QuantileDigest, StreamingCollector
from repro.metrics.stats import (
    ConfidenceInterval,
    cohens_d,
    confidence_interval,
    welch_t_test,
)
from repro.metrics.ascii_plots import ascii_cdf, ascii_series, ascii_stacked_bars
from repro.metrics.summary import RunSummary, filter_window, format_table
from repro.metrics.timeline import (
    arrival_rate_series,
    latency_series,
    slo_compliance_series,
)
from repro.metrics.throughput import (
    ClusterUtilization,
    cluster_utilization,
    strict_throughput_per_gpu,
    throughput_per_gpu_from_counts,
    total_throughput_per_gpu,
)

__all__ = [
    "COMPONENT_ORDER",
    "ClusterUtilization",
    "ConfidenceInterval",
    "LatencyBreakdown",
    "QuantileDigest",
    "RecordCollector",
    "RequestRecord",
    "RunSummary",
    "StreamingCollector",
    "arrival_rate_series",
    "ascii_cdf",
    "ascii_series",
    "ascii_stacked_bars",
    "latency_series",
    "slo_compliance_series",
    "breakdown",
    "cluster_utilization",
    "cohens_d",
    "collector_compliance",
    "confidence_interval",
    "filter_window",
    "format_table",
    "latency_cdf",
    "mean_latency",
    "p50",
    "p99",
    "p99_stacked_breakdown",
    "percentile",
    "slo_compliance",
    "slo_compliance_from_counts",
    "slo_compliance_percent",
    "strict_throughput_per_gpu",
    "tail_breakdown",
    "tail_records",
    "throughput_per_gpu_from_counts",
    "total_throughput_per_gpu",
    "violations",
    "welch_t_test",
]
