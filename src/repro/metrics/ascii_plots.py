"""Terminal plotting: render CDFs, time series, and stacked bars as text.

The benchmark harness and examples run in terminals without a display;
these helpers make the paper's figures *viewable* (not just tabulated)
anywhere. No plotting dependencies — pure string assembly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Characters used for stacked-bar segments, cycled in component order.
_BAR_CHARS = "█▓▒░╳◦"


def ascii_cdf(
    curves: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 16,
    slo: float | None = None,
    title: str = "",
) -> str:
    """Render one or more CDF curves as an ASCII plot.

    ``curves`` maps a label to ``(x_values, cumulative_fractions)``; the
    first letter of each label marks its curve. ``slo`` draws a vertical
    marker at the deadline (Figure 8's dashed line).
    """
    points = [
        (x, y)
        for xs, ys in curves.values()
        for x, y in zip(xs, ys)
    ]
    if not points:
        return f"{title}\n(no data)"
    x_max = max(x for x, _ in points)
    if slo is not None:
        x_max = max(x_max, slo * 1.05)
    x_max = x_max or 1.0
    grid = [[" "] * width for _ in range(height)]
    for label, (xs, ys) in curves.items():
        marker = label[0]
        for x, y in zip(xs, ys):
            col = min(width - 1, int(x / x_max * (width - 1)))
            row = min(height - 1, int((1.0 - y) * (height - 1)))
            grid[row][col] = marker
    if slo is not None:
        col = min(width - 1, int(slo / x_max * (width - 1)))
        for row in range(height):
            if grid[row][col] == " ":
                grid[row][col] = "|"
    lines = [title] if title else []
    lines.append("1.0 ┤" + "".join(grid[0]))
    for row in range(1, height - 1):
        lines.append("    │" + "".join(grid[row]))
    lines.append("0.0 └" + "─" * width)
    lines.append(f"     0{'':{width - 12}}x_max={x_max:.3g}")
    legend = "  ".join(f"{label[0]}={label}" for label in curves)
    if slo is not None:
        legend += "  |=SLO"
    lines.append("     " + legend)
    return "\n".join(lines)


def ascii_series(
    series: Sequence[tuple[float, float]],
    *,
    width: int = 64,
    height: int = 12,
    threshold: float | None = None,
    title: str = "",
) -> str:
    """Render a time series (e.g. Figure 7's latency trace) as ASCII."""
    if not series:
        return f"{title}\n(no data)"
    xs = [x for x, _ in series]
    ys = [y for _, y in series]
    x_min, x_max = min(xs), max(xs)
    y_max = max(max(ys), threshold or 0.0) or 1.0
    span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in series:
        col = min(width - 1, int((x - x_min) / span * (width - 1)))
        row = min(height - 1, int((1.0 - y / y_max) * (height - 1)))
        grid[row][col] = "*"
    if threshold is not None:
        row = min(height - 1, int((1.0 - threshold / y_max) * (height - 1)))
        for col in range(width):
            if grid[row][col] == " ":
                grid[row][col] = "-"
    lines = [title] if title else []
    lines.append(f"{y_max:8.3g} ┤" + "".join(grid[0]))
    for row in range(1, height - 1):
        lines.append("         │" + "".join(grid[row]))
    lines.append("       0 └" + "─" * width)
    lines.append(f"          t={x_min:.3g} .. {x_max:.3g}"
                 + ("   (-- = threshold)" if threshold is not None else ""))
    return "\n".join(lines)


def ascii_stacked_bars(
    bars: Mapping[str, Mapping[str, float]],
    *,
    width: int = 56,
    title: str = "",
) -> str:
    """Render labelled stacked bars (the Figures 2/6/11 breakdowns).

    ``bars`` maps a bar label to an ordered component→value mapping; all
    bars share one scale. A legend of component glyphs follows the bars.
    """
    if not bars:
        return f"{title}\n(no data)"
    totals = {label: sum(parts.values()) for label, parts in bars.items()}
    scale = max(totals.values()) or 1.0
    label_width = max(len(label) for label in bars)
    component_names: list[str] = []
    for parts in bars.values():
        for name in parts:
            if name not in component_names:
                component_names.append(name)
    glyph = {
        name: _BAR_CHARS[i % len(_BAR_CHARS)]
        for i, name in enumerate(component_names)
    }
    lines = [title] if title else []
    for label, parts in bars.items():
        segments = []
        for name in component_names:
            value = parts.get(name, 0.0)
            segments.append(glyph[name] * round(value / scale * width))
        bar = "".join(segments)[:width]
        lines.append(
            f"{label:>{label_width}} │{bar:<{width}}│ {totals[label]:.3g}"
        )
    lines.append(
        " " * label_width
        + "  "
        + "  ".join(f"{glyph[name]}={name}" for name in component_names)
    )
    return "\n".join(lines)
