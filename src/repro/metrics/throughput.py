"""Throughput and utilization aggregation (Figure 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cluster.node import WorkerNode
from repro.errors import ConfigurationError
from repro.metrics.records import RequestRecord


def strict_throughput_per_gpu(
    records: Iterable[RequestRecord], n_gpus: int, window_seconds: float
) -> float:
    """Strict requests served per GPU per second (Figure 10a's metric)."""
    if n_gpus <= 0 or window_seconds <= 0:
        raise ConfigurationError("n_gpus and window_seconds must be positive")
    count = sum(1 for r in records if r.strict)
    return count / (n_gpus * window_seconds)


def total_throughput_per_gpu(
    records: Iterable[RequestRecord], n_gpus: int, window_seconds: float
) -> float:
    """All requests (strict + BE) served per GPU per second."""
    if n_gpus <= 0 or window_seconds <= 0:
        raise ConfigurationError("n_gpus and window_seconds must be positive")
    count = sum(1 for _ in records)
    return count / (n_gpus * window_seconds)


def throughput_per_gpu_from_counts(
    count: int, n_gpus: int, window_seconds: float
) -> float:
    """Requests per GPU per second from a running counter (streaming
    mode); the count-based twin of the record-iterating helpers above."""
    if n_gpus <= 0 or window_seconds <= 0:
        raise ConfigurationError("n_gpus and window_seconds must be positive")
    return count / (n_gpus * window_seconds)


@dataclass(frozen=True)
class ClusterUtilization:
    """Aggregated GPU utilization across worker nodes (Figure 10b)."""

    gpu_busy_fraction: float
    gpu_any_busy_fraction: float
    memory_fraction: float
    reconfigurations: int


def cluster_utilization(nodes: Sequence[WorkerNode]) -> ClusterUtilization:
    """Average the per-GPU utilization integrals over ``nodes``."""
    if not nodes:
        return ClusterUtilization(0.0, 0.0, 0.0, 0)
    stats = [node.gpu.utilization() for node in nodes]
    return ClusterUtilization(
        gpu_busy_fraction=sum(s.busy_fraction for s in stats) / len(stats),
        gpu_any_busy_fraction=sum(s.any_busy_fraction for s in stats)
        / len(stats),
        memory_fraction=sum(s.memory_fraction for s in stats) / len(stats),
        reconfigurations=sum(s.reconfigurations for s in stats),
    )
