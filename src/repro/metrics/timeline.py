"""Time-series views of request records (Figure 7's latency trace)."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.records import RequestRecord


def latency_series(
    records: Iterable[RequestRecord],
    *,
    bucket_seconds: float = 1.0,
    percentile: float = 95.0,
    start: float = 0.0,
    end: float | None = None,
) -> list[tuple[float, float]]:
    """Per-bucket latency percentile over arrival time.

    Returns ``(bucket_start, latency)`` points for every bucket that saw
    at least one arrival; empty buckets are skipped so the series plots
    cleanly.
    """
    if bucket_seconds <= 0:
        raise ConfigurationError("bucket_seconds must be positive")
    buckets: dict[int, list[float]] = {}
    for record in records:
        if record.arrival < start:
            continue
        if end is not None and record.arrival >= end:
            continue
        index = int((record.arrival - start) // bucket_seconds)
        buckets.setdefault(index, []).append(record.latency)
    return [
        (
            start + index * bucket_seconds,
            float(np.percentile(values, percentile)),
        )
        for index, values in sorted(buckets.items())
    ]


def arrival_rate_series(
    records: Iterable[RequestRecord],
    *,
    bucket_seconds: float = 1.0,
    start: float = 0.0,
    end: float | None = None,
) -> list[tuple[float, float]]:
    """Requests per second over time (served requests only)."""
    if bucket_seconds <= 0:
        raise ConfigurationError("bucket_seconds must be positive")
    buckets: dict[int, int] = {}
    for record in records:
        if record.arrival < start:
            continue
        if end is not None and record.arrival >= end:
            continue
        index = int((record.arrival - start) // bucket_seconds)
        buckets[index] = buckets.get(index, 0) + 1
    return [
        (start + index * bucket_seconds, count / bucket_seconds)
        for index, count in sorted(buckets.items())
    ]


def slo_compliance_series(
    records: Sequence[RequestRecord],
    *,
    bucket_seconds: float = 5.0,
    start: float = 0.0,
    end: float | None = None,
) -> list[tuple[float, float]]:
    """Windowed SLO compliance (fraction) of strict requests over time."""
    if bucket_seconds <= 0:
        raise ConfigurationError("bucket_seconds must be positive")
    buckets: dict[int, list[bool]] = {}
    for record in records:
        if not record.strict or record.slo_met is None:
            continue
        if record.arrival < start:
            continue
        if end is not None and record.arrival >= end:
            continue
        index = int((record.arrival - start) // bucket_seconds)
        buckets.setdefault(index, []).append(bool(record.slo_met))
    return [
        (start + index * bucket_seconds, sum(flags) / len(flags))
        for index, flags in sorted(buckets.items())
    ]
