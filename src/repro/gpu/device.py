"""A simulated MIG-capable GPU (one A100 per worker node).

The device owns the current MIG geometry and its live slices. MIG semantics
follow the user guide as summarized in Section 2.2 of the paper:

- reconfiguring requires every slice to be idle (no running processes);
- reconfiguration takes a fixed downtime (~2 s in the paper) during which
  no work can be submitted;
- MPS may be layered on top of each slice (the default here) or the slices
  may be time-shared, depending on the scheme being modelled.

The device rolls slice utilization integrals up across reconfigurations so
whole-run GPU/memory utilization (Figure 10b) stays exact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import (
    GPUError,
    ReconfigurationInProgressError,
    SliceBusyError,
)
from repro.gpu.device_models import A100_40GB, MigDeviceModel, geometry_profiles
from repro.gpu.engine import GPUSlice, ShareMode
from repro.gpu.mig import Geometry, GEOMETRY_FULL
from repro.observability.span import CATEGORY_GPU
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.simulation.simulator import Simulator

#: MIG geometry change downtime, seconds (paper Section 4.4: "~2s").
DEFAULT_RECONFIG_SECONDS = 2.0

_gpu_ids = itertools.count()


def reset_ids() -> None:
    """Restart GPU numbering (fresh id space per experiment run)."""
    global _gpu_ids
    _gpu_ids = itertools.count()


@dataclass(frozen=True)
class GPUUtilization:
    """Whole-run utilization summary for one GPU.

    ``any_busy_fraction`` is the nvidia-smi-style "percentage non-idle
    time" the paper reports in Figure 10b (fraction of wall time in which
    at least one slice was executing); ``busy_fraction`` is the
    compute-weighted variant (slice busy time × slice compute share).
    """

    busy_fraction: float
    any_busy_fraction: float
    memory_fraction: float
    reconfigurations: int


class GPU:
    """One MIG-capable GPU: a geometry plus its live slices."""

    def __init__(
        self,
        sim: Simulator,
        geometry: Geometry = GEOMETRY_FULL,
        mode: ShareMode = ShareMode.MPS,
        *,
        reconfig_seconds: float = DEFAULT_RECONFIG_SECONDS,
        name: str = "",
        device_model: MigDeviceModel = A100_40GB,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.mode = mode
        self.tracer = tracer
        self.device_model = device_model
        if not device_model.partitionable and geometry != GEOMETRY_FULL:
            raise GPUError(
                f"{device_model.name} is not MIG-capable: only the full "
                "(7g) geometry is valid for time-slicing parts"
            )
        self.reconfig_seconds = reconfig_seconds
        self.gpu_id = next(_gpu_ids)
        self.name = name or f"gpu{self.gpu_id}"
        self.geometry = geometry
        self.slices: list[GPUSlice] = []
        self.reconfiguring = False
        self.reconfigurations = 0
        #: Device-wide slowdown overlay; survives reconfigurations (new
        #: slices inherit it) so a fault window outlives geometry changes.
        self.slowdown = 1.0
        self._created_at = sim.now
        # Utilization carried over from slices retired by reconfiguration.
        self._retired_busy_weighted = 0.0
        self._retired_memory_gb_seconds = 0.0
        # Whole-device "any slice busy" integral (nvidia-smi style).
        self._busy_slice_count = 0
        self._any_busy_seconds = 0.0
        self._last_any_account = sim.now
        self._build_slices(geometry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when every slice is free of running and pending work."""
        return all(s.idle for s in self.slices)

    @property
    def available(self) -> bool:
        """True when the GPU can accept work (not mid-reconfiguration)."""
        return not self.reconfiguring

    @property
    def occupancy(self) -> int:
        """Total jobs attached across all slices."""
        return sum(s.occupancy for s in self.slices)

    def slices_by_size(self, *, ascending: bool = True) -> list[GPUSlice]:
        """Slices ordered by compute share (the Algorithm 1 iteration order)."""
        ordered = sorted(self.slices, key=lambda s: s.profile.compute_units)
        return ordered if ascending else list(reversed(ordered))

    def largest_slice(self) -> GPUSlice:
        """The slice with the most compute units."""
        return self.slices_by_size(ascending=False)[0]

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------
    def can_reconfigure(self) -> bool:
        """Whether a geometry change could start right now."""
        return self.idle and not self.reconfiguring

    def reconfigure(
        self, geometry: Geometry, on_done: Optional[Callable[["GPU"], None]] = None
    ) -> None:
        """Switch to ``geometry`` after the reconfiguration downtime.

        Raises
        ------
        SliceBusyError
            If any slice still holds work (MIG requires idle instances).
        ReconfigurationInProgressError
            If a change is already underway.
        """
        if not self.device_model.partitionable:
            raise GPUError(
                f"{self.name} ({self.device_model.name}) is not MIG-capable: "
                "time-slicing parts run one full-GPU slice and never "
                "reconfigure"
            )
        if self.reconfiguring:
            raise ReconfigurationInProgressError(
                f"{self.name} is already reconfiguring"
            )
        if not self.idle:
            raise SliceBusyError(
                f"{self.name} has active work; MIG reconfiguration needs idle slices"
            )
        if geometry == self.geometry:
            if on_done is not None:
                on_done(self)
            return
        self._retire_slices()
        self.reconfiguring = True
        span = self.tracer.begin(
            "gpu.reconfigure",
            category=CATEGORY_GPU,
            track=f"gpu/{self.name}",
            gpu=self.name,
            geometry=str(geometry),
        )

        def finish() -> None:
            self.reconfiguring = False
            self.geometry = geometry
            self._build_slices(geometry)
            self.reconfigurations += 1
            self.tracer.end(span)
            if on_done is not None:
                on_done(self)

        self.sim.after(self.reconfig_seconds, finish, label=f"{self.name}-reconfig")

    def set_slowdown(self, multiplier: float) -> None:
        """Apply a latency multiplier to every slice, now and after any
        future reconfiguration, until lifted with ``set_slowdown(1.0)``."""
        self.slowdown = multiplier
        for gpu_slice in self.slices:
            gpu_slice.set_slowdown(multiplier)

    def _build_slices(self, geometry: Geometry) -> None:
        self.slices = []
        profiles = geometry_profiles(geometry.kinds, self.device_model)
        for index, prof in enumerate(profiles):
            gpu_slice = GPUSlice(
                self.sim,
                prof,
                self.mode,
                name=f"{self.name}/{prof.kind.value}#{index}",
                tracer=self.tracer,
            )
            gpu_slice.busy_observer = self._on_slice_busy_change
            if self.slowdown != 1.0:
                gpu_slice.set_slowdown(self.slowdown)
            self.slices.append(gpu_slice)

    def _retire_slices(self) -> None:
        for old in self.slices:
            busy, mem_gb_s, _lifetime = old.utilization_snapshot()
            self._retired_busy_weighted += busy * old.profile.compute_fraction
            self._retired_memory_gb_seconds += mem_gb_s
        self._account_any_busy()
        self._busy_slice_count = 0  # idle is a reconfiguration precondition
        self.slices = []

    def _on_slice_busy_change(self, _slice: GPUSlice, busy: bool) -> None:
        self._account_any_busy()
        self._busy_slice_count += 1 if busy else -1

    def _account_any_busy(self) -> None:
        now = self.sim.now
        if self._busy_slice_count > 0:
            self._any_busy_seconds += now - self._last_any_account
        self._last_any_account = now

    # ------------------------------------------------------------------
    # Utilization
    # ------------------------------------------------------------------
    def utilization(self) -> GPUUtilization:
        """Compute-weighted busy fraction and memory occupancy fraction."""
        busy_weighted = self._retired_busy_weighted
        mem_gb_seconds = self._retired_memory_gb_seconds
        for s in self.slices:
            busy, mem_gb_s, _lifetime = s.utilization_snapshot()
            busy_weighted += busy * s.profile.compute_fraction
            mem_gb_seconds += mem_gb_s
        self._account_any_busy()
        elapsed = self.sim.now - self._created_at
        if elapsed <= 0:
            return GPUUtilization(0.0, 0.0, 0.0, self.reconfigurations)
        return GPUUtilization(
            busy_fraction=busy_weighted / elapsed,
            any_busy_fraction=self._any_busy_seconds / elapsed,
            memory_fraction=mem_gb_seconds
            / (elapsed * self.device_model.total_memory_gb),
            reconfigurations=self.reconfigurations,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "reconfiguring" if self.reconfiguring else "ready"
        return f"GPU({self.name}, {self.geometry!r}, {state})"
