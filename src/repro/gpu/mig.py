"""MIG instance profiles and geometry validation for the A100.

Implements Table 2 of the paper: the five instance profiles available on an
A100-40GB, their compute/memory/cache fractions, and the partitioning rules
that decide which combinations ("geometries") are valid.

The A100 exposes 7 compute slices and 8 memory slices. A profile consumes a
fixed number of each; a geometry is valid when the totals fit and per-profile
max counts (Table 2) are respected. The ``7g`` profile is the whole GPU and
must stand alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Iterable, Sequence

from repro.errors import InvalidGeometryError

#: Total compute slices (SM groups) on an A100.
TOTAL_COMPUTE_UNITS = 7
#: Total memory slices on an A100.
TOTAL_MEMORY_UNITS = 8
#: Total device memory of an A100-40GB, in GB.
TOTAL_MEMORY_GB = 40.0


class SliceKind(str, Enum):
    """The five MIG instance profiles of an A100-40GB (Table 2)."""

    G1 = "1g"
    G2 = "2g"
    G3 = "3g"
    G4 = "4g"
    G7 = "7g"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SliceProfile:
    """Static description of one MIG profile (a row of Table 2)."""

    kind: SliceKind
    compute_units: int
    memory_units: int
    memory_gb: float
    max_count: int

    @property
    def compute_fraction(self) -> float:
        """Fraction of the GPU's SMs this profile owns."""
        return self.compute_units / TOTAL_COMPUTE_UNITS

    @property
    def bandwidth_fraction(self) -> float:
        """Fraction of global memory bandwidth (∝ memory slices)."""
        return self.memory_units / TOTAL_MEMORY_UNITS

    @property
    def cache_fraction(self) -> float:
        """Fraction of L2 cache (same partitioning as memory slices)."""
        return self.memory_units / TOTAL_MEMORY_UNITS

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.kind.value


#: Table 2 — possible MIG instance profiles on an A100 GPU.
MIG_PROFILES: dict[SliceKind, SliceProfile] = {
    SliceKind.G7: SliceProfile(SliceKind.G7, 7, 8, 40.0, 1),
    SliceKind.G4: SliceProfile(SliceKind.G4, 4, 4, 20.0, 1),
    SliceKind.G3: SliceProfile(SliceKind.G3, 3, 4, 20.0, 2),
    SliceKind.G2: SliceProfile(SliceKind.G2, 2, 2, 10.0, 3),
    SliceKind.G1: SliceProfile(SliceKind.G1, 1, 1, 5.0, 7),
}


def profile(kind: SliceKind | str) -> SliceProfile:
    """Look up the :class:`SliceProfile` for ``kind`` (enum or string)."""
    return MIG_PROFILES[SliceKind(kind)]


def _as_kinds(kinds: Iterable[SliceKind | str]) -> tuple[SliceKind, ...]:
    return tuple(SliceKind(k) for k in kinds)


class Geometry:
    """An ordered multiset of MIG profiles configured on one GPU.

    Geometries compare equal by their sorted slice multiset, matching the
    paper's usage where e.g. ``(4g, 3g)`` names an unordered configuration.
    """

    __slots__ = ("kinds",)

    def __init__(self, kinds: Iterable[SliceKind | str]):
        resolved = _as_kinds(kinds)
        validate_geometry(resolved)
        # Store largest-first; schedulers frequently want the biggest slice.
        self.kinds = tuple(
            sorted(resolved, key=lambda k: -MIG_PROFILES[k].compute_units)
        )

    @property
    def profiles(self) -> tuple[SliceProfile, ...]:
        """The profiles of this geometry, largest-first."""
        return tuple(MIG_PROFILES[k] for k in self.kinds)

    @property
    def compute_units(self) -> int:
        """Total compute slices consumed."""
        return sum(p.compute_units for p in self.profiles)

    @property
    def memory_units(self) -> int:
        """Total memory slices consumed."""
        return sum(p.memory_units for p in self.profiles)

    @property
    def total_memory_gb(self) -> float:
        """Sum of slice memory capacities in GB."""
        return sum(p.memory_gb for p in self.profiles)

    def __len__(self) -> int:
        return len(self.kinds)

    def __iter__(self):
        return iter(self.profiles)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Geometry):
            return NotImplemented
        return self.kinds == other.kinds

    def __hash__(self) -> int:
        return hash(self.kinds)

    def __repr__(self) -> str:
        return "Geometry(" + ", ".join(k.value for k in self.kinds) + ")"


def validate_geometry(kinds: Sequence[SliceKind]) -> None:
    """Raise :class:`InvalidGeometryError` unless ``kinds`` is valid.

    Rules (Table 2 + A100 partitioning):

    - at least one slice;
    - total compute slices ≤ 7 and total memory slices ≤ 8;
    - per-profile counts within Table 2 maxima;
    - ``7g`` must be the sole slice.
    """
    if not kinds:
        raise InvalidGeometryError("a geometry needs at least one slice")
    counts: dict[SliceKind, int] = {}
    for kind in kinds:
        counts[kind] = counts.get(kind, 0) + 1
    for kind, count in counts.items():
        if count > MIG_PROFILES[kind].max_count:
            raise InvalidGeometryError(
                f"{count}×{kind.value} exceeds max count "
                f"{MIG_PROFILES[kind].max_count}"
            )
    if SliceKind.G7 in counts and len(kinds) > 1:
        raise InvalidGeometryError("7g must occupy the GPU alone")
    compute = sum(MIG_PROFILES[k].compute_units for k in kinds)
    if compute > TOTAL_COMPUTE_UNITS:
        raise InvalidGeometryError(
            f"geometry uses {compute} compute units > {TOTAL_COMPUTE_UNITS}"
        )
    memory = sum(MIG_PROFILES[k].memory_units for k in kinds)
    if memory > TOTAL_MEMORY_UNITS:
        raise InvalidGeometryError(
            f"geometry uses {memory} memory units > {TOTAL_MEMORY_UNITS}"
        )


def is_valid_geometry(kinds: Iterable[SliceKind | str]) -> bool:
    """Boolean companion to :func:`validate_geometry`."""
    try:
        validate_geometry(_as_kinds(kinds))
    except InvalidGeometryError:
        return False
    return True


@lru_cache(maxsize=1)
def enumerate_geometries() -> tuple[Geometry, ...]:
    """All valid A100 geometries, deduplicated as multisets.

    The result is deterministic: sorted by descending largest slice, then
    descending slice count.
    """
    kinds = [SliceKind.G7, SliceKind.G4, SliceKind.G3, SliceKind.G2, SliceKind.G1]
    found: set[tuple[SliceKind, ...]] = set()

    def extend(current: list[SliceKind], start: int) -> None:
        if current and is_valid_geometry(current):
            found.add(
                tuple(
                    sorted(current, key=lambda k: -MIG_PROFILES[k].compute_units)
                )
            )
        if len(current) >= TOTAL_MEMORY_UNITS:
            return
        for index in range(start, len(kinds)):
            current.append(kinds[index])
            compute = sum(MIG_PROFILES[k].compute_units for k in current)
            memory = sum(MIG_PROFILES[k].memory_units for k in current)
            if compute <= TOTAL_COMPUTE_UNITS and memory <= TOTAL_MEMORY_UNITS:
                extend(current, index)
            current.pop()

    extend([], 0)
    geometries = [Geometry(k) for k in found]
    geometries.sort(
        key=lambda g: (
            -g.profiles[0].compute_units,
            -len(g),
            tuple(k.value for k in g.kinds),
        )
    )
    return tuple(geometries)


#: The geometries the paper's Algorithm 2 chooses between.
GEOMETRY_4G_3G = Geometry([SliceKind.G4, SliceKind.G3])
GEOMETRY_4G_2G_1G = Geometry([SliceKind.G4, SliceKind.G2, SliceKind.G1])
GEOMETRY_FULL = Geometry([SliceKind.G7])
