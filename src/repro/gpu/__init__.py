"""GPU substrate: MIG geometry model, MPS sharing, and the slowdown model.

This package simulates the architectural capabilities the paper builds on
(Section 2.2): MIG partitioning per Table 2, MPS spatial sharing with
bandwidth-contention interference (Eq. 1), the resource-deficiency factor,
and the combined slowdown factor η (Eq. 2) used for placement.
"""

from repro.gpu.device import DEFAULT_RECONFIG_SECONDS, GPU, GPUUtilization
from repro.gpu.device_models import (
    A100_40GB,
    A100_80GB,
    DEVICE_MODELS,
    H100_80GB,
    MigDeviceModel,
    get_device_model,
)
from repro.gpu.engine import GPUSlice, JobTiming, ShareMode, SliceJob
from repro.gpu.mig import (
    GEOMETRY_4G_2G_1G,
    GEOMETRY_4G_3G,
    GEOMETRY_FULL,
    MIG_PROFILES,
    TOTAL_COMPUTE_UNITS,
    TOTAL_MEMORY_GB,
    TOTAL_MEMORY_UNITS,
    Geometry,
    SliceKind,
    SliceProfile,
    enumerate_geometries,
    is_valid_geometry,
    profile,
    validate_geometry,
)
from repro.gpu.planner import (
    BatchStream,
    GeometryPlanEvaluation,
    best_geometry,
    evaluate_geometry,
)
from repro.gpu.slowdown import (
    interference_factor,
    predicted_execution_time,
    resource_deficiency_factor,
    slice_relative_fbr,
    slowdown_factor,
)

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "BatchStream",
    "DEFAULT_RECONFIG_SECONDS",
    "DEVICE_MODELS",
    "H100_80GB",
    "MigDeviceModel",
    "get_device_model",
    "GeometryPlanEvaluation",
    "best_geometry",
    "evaluate_geometry",
    "GEOMETRY_4G_2G_1G",
    "GEOMETRY_4G_3G",
    "GEOMETRY_FULL",
    "GPU",
    "GPUSlice",
    "GPUUtilization",
    "Geometry",
    "JobTiming",
    "MIG_PROFILES",
    "ShareMode",
    "SliceJob",
    "SliceKind",
    "SliceProfile",
    "TOTAL_COMPUTE_UNITS",
    "TOTAL_MEMORY_GB",
    "TOTAL_MEMORY_UNITS",
    "enumerate_geometries",
    "interference_factor",
    "is_valid_geometry",
    "predicted_execution_time",
    "profile",
    "resource_deficiency_factor",
    "slice_relative_fbr",
    "slowdown_factor",
    "validate_geometry",
]
