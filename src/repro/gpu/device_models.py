"""MIG device models beyond the A100-40GB.

The paper's title targets "emerging GPU architectures" and §7 argues
PROTEAN generalizes to any accelerator offering MIG-like partitioning and
MPS-like sharing. Ampere and Hopper parts share the same partitioning
skeleton — 7 compute slices × 8 memory slices with identical per-profile
fractions — and differ in total memory:

- **A100-40GB** (the paper's testbed): 1g.5gb … 7g.40gb;
- **A100-80GB**: 1g.10gb … 7g.80gb;
- **H100-80GB**: 1g.10gb … 7g.80gb (Hopper; same MIG shape as A100-80GB
  for scheduling purposes — Hopper's extra 1g.20gb variant is a memory
  oversubscription option we do not model).

Because slice *fractions* are identical across these parts, the slowdown
model (RDF power law, slice-relative FBR) transfers unchanged; only
memory capacities — and therefore packing density — differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.errors import GPUError
from repro.gpu.mig import MIG_PROFILES, SliceKind, SliceProfile


@dataclass(frozen=True)
class MigDeviceModel:
    """One MIG-capable GPU part: its profile table and totals."""

    name: str
    total_memory_gb: float
    profiles: Mapping[SliceKind, SliceProfile]

    def profile(self, kind: SliceKind | str) -> SliceProfile:
        """Look up one of this device's slice profiles."""
        return self.profiles[SliceKind(kind)]


def _scaled_profiles(memory_scale: float) -> Mapping[SliceKind, SliceProfile]:
    if memory_scale <= 0:
        raise GPUError("memory_scale must be positive")
    return MappingProxyType(
        {
            kind: SliceProfile(
                kind=prof.kind,
                compute_units=prof.compute_units,
                memory_units=prof.memory_units,
                memory_gb=prof.memory_gb * memory_scale,
                max_count=prof.max_count,
            )
            for kind, prof in MIG_PROFILES.items()
        }
    )


#: The paper's testbed GPU.
A100_40GB = MigDeviceModel(
    name="A100-40GB",
    total_memory_gb=40.0,
    profiles=MappingProxyType(dict(MIG_PROFILES)),
)

#: The 80 GB Ampere part: same slice shapes, double memory.
A100_80GB = MigDeviceModel(
    name="A100-80GB",
    total_memory_gb=80.0,
    profiles=_scaled_profiles(2.0),
)

#: Hopper: identical MIG shape to the A100-80GB for scheduling purposes.
H100_80GB = MigDeviceModel(
    name="H100-80GB",
    total_memory_gb=80.0,
    profiles=_scaled_profiles(2.0),
)

DEVICE_MODELS: dict[str, MigDeviceModel] = {
    "a100": A100_40GB,
    "a100-40gb": A100_40GB,
    "a100-80gb": A100_80GB,
    "h100": H100_80GB,
    "h100-80gb": H100_80GB,
}


def get_device_model(name: str) -> MigDeviceModel:
    """Resolve a device model by short name (``"a100"``, ``"h100"``, ...)."""
    model = DEVICE_MODELS.get(name.lower().strip())
    if model is None:
        raise GPUError(
            f"unknown device model {name!r}; known: {sorted(DEVICE_MODELS)}"
        )
    return model


def geometry_profiles(
    kinds, device: MigDeviceModel = A100_40GB
) -> tuple[SliceProfile, ...]:
    """The device-specific profiles for a sequence of slice kinds.

    Lets a :class:`~repro.gpu.device.GPU` be instantiated with another
    part's memory capacities while reusing the (shape-identical) A100
    geometry validation.
    """
    return tuple(device.profile(kind) for kind in kinds)
