"""GPU device models beyond the A100-40GB.

The paper's title targets "emerging GPU architectures" and §7 argues
PROTEAN generalizes to any accelerator offering MIG-like partitioning and
MPS-like sharing. Ampere and Hopper parts share the same partitioning
skeleton — 7 compute slices × 8 memory slices with identical per-profile
fractions — and differ in total memory:

- **A100-40GB** (the paper's testbed): 1g.5gb … 7g.40gb;
- **A100-80GB**: 1g.10gb … 7g.80gb;
- **H100-80GB**: 1g.10gb … 7g.80gb (Hopper; same MIG shape as A100-80GB
  for scheduling purposes — Hopper's extra 1g.20gb variant is a memory
  oversubscription option we do not model).

Because slice *fractions* are identical across these parts, the slowdown
model (RDF power law, slice-relative FBR) transfers unchanged; only
memory capacities — and therefore packing density — differ.

Two **non-MIG time-slicing** parts complete the heterogeneous-fleet
catalogue (calibration sources in ``docs/hardware.md``):

- **T4-16GB** and **A10-24GB** offer no MIG partitioning: the whole GPU
  is one shared device, replicas time-slice it with no memory or fault
  isolation between them. The platform models them as a single full-GPU
  slice under MPS-style concurrent sharing (FBR interference), never
  reconfigured (``partitionable=False``).

Each model carries a ``speed_factor``: sustained inference throughput of
the full device relative to a full A100-40GB (the unit every workload
profile's ``solo_latency_7g`` is calibrated in). The scheduler divides a
batch's work by this factor, so the default A100 path is bit-identical
(``work / 1.0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.errors import GPUError
from repro.gpu.mig import MIG_PROFILES, SliceKind, SliceProfile


@dataclass(frozen=True)
class MigDeviceModel:
    """One GPU part: its slice-profile table, totals, and relative speed."""

    name: str
    total_memory_gb: float
    profiles: Mapping[SliceKind, SliceProfile]
    #: Sustained throughput of the full device relative to a full
    #: A100-40GB (workload profiles are calibrated on the A100's 7g).
    speed_factor: float = 1.0
    #: Whether the part supports MIG partitioning. Non-partitionable
    #: parts (T4, A10) run as a single full-GPU slice, time-sliced
    #: between replicas; the reconfigurator never arms for them.
    partitionable: bool = True

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise GPUError("speed_factor must be positive")

    def profile(self, kind: SliceKind | str) -> SliceProfile:
        """Look up one of this device's slice profiles."""
        return self.profiles[SliceKind(kind)]


def _scaled_profiles(memory_scale: float) -> Mapping[SliceKind, SliceProfile]:
    if memory_scale <= 0:
        raise GPUError("memory_scale must be positive")
    return MappingProxyType(
        {
            kind: SliceProfile(
                kind=prof.kind,
                compute_units=prof.compute_units,
                memory_units=prof.memory_units,
                memory_gb=prof.memory_gb * memory_scale,
                max_count=prof.max_count,
            )
            for kind, prof in MIG_PROFILES.items()
        }
    )


#: The paper's testbed GPU.
A100_40GB = MigDeviceModel(
    name="A100-40GB",
    total_memory_gb=40.0,
    profiles=MappingProxyType(dict(MIG_PROFILES)),
)

#: The 80 GB Ampere part: same slice shapes, double memory; HBM2e gives
#: it a modest throughput edge on the memory-bound inference mixes.
A100_80GB = MigDeviceModel(
    name="A100-80GB",
    total_memory_gb=80.0,
    profiles=_scaled_profiles(2.0),
    speed_factor=1.1,
)

#: Hopper: identical MIG shape to the A100-80GB for scheduling purposes.
H100_80GB = MigDeviceModel(
    name="H100-80GB",
    total_memory_gb=80.0,
    profiles=_scaled_profiles(2.0),
    speed_factor=1.8,
)

#: Turing inference part: no MIG — replicas time-slice the whole GPU.
T4_16GB = MigDeviceModel(
    name="T4-16GB",
    total_memory_gb=16.0,
    profiles=_scaled_profiles(0.4),
    speed_factor=0.25,
    partitionable=False,
)

#: Ampere inference part: no MIG — replicas time-slice the whole GPU.
A10_24GB = MigDeviceModel(
    name="A10-24GB",
    total_memory_gb=24.0,
    profiles=_scaled_profiles(0.6),
    speed_factor=0.45,
    partitionable=False,
)

DEVICE_MODELS: dict[str, MigDeviceModel] = {
    "a100": A100_40GB,
    "a100-40gb": A100_40GB,
    "a100-80gb": A100_80GB,
    "h100": H100_80GB,
    "h100-80gb": H100_80GB,
    "t4": T4_16GB,
    "t4-16gb": T4_16GB,
    "a10": A10_24GB,
    "a10-24gb": A10_24GB,
}


def get_device_model(name: str) -> MigDeviceModel:
    """Resolve a device model by short name (``"a100"``, ``"h100"``, ...)."""
    model = DEVICE_MODELS.get(name.lower().strip())
    if model is None:
        raise GPUError(
            f"unknown device model {name!r}; known: {sorted(DEVICE_MODELS)}"
        )
    return model


def geometry_profiles(
    kinds, device: MigDeviceModel = A100_40GB
) -> tuple[SliceProfile, ...]:
    """The device-specific profiles for a sequence of slice kinds.

    Lets a :class:`~repro.gpu.device.GPU` be instantiated with another
    part's memory capacities while reusing the (shape-identical) A100
    geometry validation.
    """
    return tuple(device.profile(kind) for kind in kinds)
