"""Analytic MIG geometry planning.

Given a workload mix (strict and best-effort batch streams), estimate the
strict-request slowdown each candidate geometry would produce and pick the
minimizer. This is the "multiple offline configuration/scheduling sweeps"
the paper's Oracle performs (Section 6.2), exposed as a reusable API.

The cost model composes the same primitives the online scheduler uses:

- BE batches are packed First-Fit onto the smallest slices (Guideline 1);
- strict batches occupy the remaining slices, load-balanced;
- each stream's expected slowdown is ``RDF × max(Σ FBR·utilization, 1)``,
  with co-residency weighted by per-slice utilization (an M/G/∞ view of
  Eq. 1's contention sum);
- the objective is the utilization-weighted mean strict slowdown, with an
  infeasibility penalty when demand exceeds a slice set's capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import SchedulingError
from repro.gpu.mig import Geometry, SliceProfile, enumerate_geometries

if TYPE_CHECKING:  # pragma: no cover — avoids gpu ↔ workloads import cycle
    from repro.workloads.profile import ModelProfile

#: Cost assigned per unit of demand that cannot be placed at all.
INFEASIBLE_PENALTY = 100.0


@dataclass(frozen=True)
class BatchStream:
    """One homogeneous stream of batches offered to a GPU."""

    model: "ModelProfile"
    batches_per_second: float
    strict: bool

    def __post_init__(self) -> None:
        if self.batches_per_second < 0:
            raise SchedulingError("batches_per_second must be non-negative")

    def utilization_on(self, slice_profile: SliceProfile) -> float:
        """Expected busy fraction this stream alone puts on a slice."""
        return (
            self.batches_per_second
            * self.model.solo_latency_7g
            * self.model.rdf(slice_profile)
        )


@dataclass(frozen=True)
class GeometryPlanEvaluation:
    """Outcome of evaluating one geometry against a workload mix."""

    geometry: Geometry
    strict_slowdown: float
    feasible: bool
    placements: dict[str, tuple[str, ...]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.feasible else "infeasible"
        return (
            f"GeometryPlanEvaluation({self.geometry!r}, "
            f"η̄={self.strict_slowdown:.3f}, {state})"
        )


def evaluate_geometry(
    geometry: Geometry, streams: Sequence[BatchStream]
) -> GeometryPlanEvaluation:
    """Estimate the mean strict slowdown of ``streams`` on ``geometry``."""
    slices = list(geometry.profiles)
    ascending = sorted(slices, key=lambda p: p.compute_units)
    descending = list(reversed(ascending))

    # Per-slice aggregate state: utilization and Σ fbr·utilization.
    load = {id(p): 0.0 for p in slices}
    contention = {id(p): 0.0 for p in slices}
    placements: dict[str, tuple[str, ...]] = {}
    feasible = True

    def place(stream: BatchStream, order: list[SliceProfile]) -> None:
        nonlocal feasible
        fitting = [p for p in order if stream.model.fits(p)]
        if not fitting:
            feasible = False
            placements[stream.model.name] = ()
            return
        # Spread the stream across fitting slices proportionally to their
        # remaining headroom — the best case a load balancer can achieve.
        headroom = [max(0.0, 1.0 - load[id(p)]) for p in fitting]
        total_headroom = sum(headroom)
        chosen: list[str] = []
        for prof, room in zip(fitting, headroom):
            share = (
                room / total_headroom
                if total_headroom > 0
                else 1.0 / len(fitting)
            )
            if share <= 0:
                continue
            util = stream.utilization_on(prof) * share
            load[id(prof)] += util
            contention[id(prof)] += stream.model.slice_fbr(prof) * min(
                util, 1.0
            )
            chosen.append(prof.kind.value)
        placements[stream.model.name] = tuple(chosen)

    for stream in streams:
        if not stream.strict:
            place(stream, ascending)  # Guideline 1: pack small first
    for stream in streams:
        if stream.strict:
            place(stream, descending)  # Guideline 2: large slices first

    # Expected strict slowdown: utilization-weighted mean of
    # RDF × max(Σ fbr·util on the slice, 1), plus overload penalties.
    weighted = 0.0
    weight = 0.0
    for stream in streams:
        if not stream.strict:
            continue
        for prof in slices:
            if prof.kind.value not in placements.get(stream.model.name, ()):
                continue
            factor = max(contention[id(prof)], 1.0)
            overload = max(0.0, load[id(prof)] - 1.0)
            eta = stream.model.rdf(prof) * factor + overload * INFEASIBLE_PENALTY
            share = stream.utilization_on(prof)
            weighted += eta * share
            weight += share
    slowdown = weighted / weight if weight > 0 else 1.0
    if not feasible:
        slowdown += INFEASIBLE_PENALTY
    return GeometryPlanEvaluation(geometry, slowdown, feasible, placements)


def best_geometry(
    streams: Sequence[BatchStream],
    candidates: Iterable[Geometry] | None = None,
) -> GeometryPlanEvaluation:
    """Sweep ``candidates`` (default: all valid A100 geometries) and return
    the evaluation with the lowest expected strict slowdown.

    Ties break toward geometries with a larger biggest slice (less
    resource deficiency headroom risk), mirroring the paper's preference.
    """
    pool = tuple(candidates) if candidates is not None else enumerate_geometries()
    if not pool:
        raise SchedulingError("no candidate geometries supplied")
    evaluations = [evaluate_geometry(g, streams) for g in pool]
    evaluations.sort(
        key=lambda e: (
            e.strict_slowdown,
            -e.geometry.profiles[0].compute_units,
            len(e.geometry),
        )
    )
    return evaluations[0]
