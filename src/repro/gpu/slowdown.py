"""The paper's job-slowdown model (Section 3, Equations 1 and 2).

PROTEAN repurposes Prophet's MPS interference model: a job co-located on a
shared (slice of a) GPU slows down in proportion to the total Fractional
Bandwidth Requirement (FBR) of all residents,

    T_k = Solo_k × max{ bw_k·sm_k + Σ_i bw_i·sm_i , 1 }        (Eq. 1)

and combines it with the *Resource Deficiency Factor* RDF — the ratio of the
job's solo time on the target slice to its solo time on the full GPU — into
the slowdown factor used for placement decisions,

    η = RDF × max{ bw_k·sm_k + Σ_i bw_i·sm_i , 1 }             (Eq. 2)

FBR conventions used throughout this library:

- A model profile stores its FBR normalized to the *full GPU's* bandwidth
  (``bw·sm`` for the default MPS mode where the job spans all SMs given to
  it). This matches Figure 3 of the paper.
- On a MIG slice, bandwidth is partitioned, so contention is evaluated
  against the slice's own bandwidth: a job's slice-relative FBR is its
  full-GPU FBR divided by the slice's bandwidth fraction, capped at 1.0
  (a single process cannot demand more than the slice can deliver; the
  excess shows up as resource deficiency via RDF, not as interference).
- Under SM capping (the GPUlet baseline), ``sm`` shrinks the job's
  bandwidth demand proportionally.
"""

from __future__ import annotations

from typing import Iterable


def slice_relative_fbr(
    model_fbr: float,
    bandwidth_fraction: float,
    sm_fraction: float = 1.0,
    compute_fraction: float = 1.0,
) -> float:
    """FBR of one job relative to its slice's bandwidth (the ``bw·sm`` term).

    A job running on a MIG slice occupies only the slice's SMs, so its
    absolute bandwidth demand shrinks proportionally:
    ``demand = model_fbr × compute_fraction × sm_fraction`` of the full
    GPU's bandwidth, while the slice supplies ``bandwidth_fraction`` of
    it. The slice-relative term is their ratio, capped at 1.0 (a single
    process cannot pull more than the slice's full bandwidth — any excess
    manifests as resource deficiency via RDF, not interference).

    On the A100 the compute:bandwidth ratio per slice is nearly uniform
    (e.g. 4g: (4/7)/(4/8) ≈ 1.14, 3g: (3/7)/(4/8) ≈ 0.86), so contention
    pressure on a slice closely tracks the full-GPU FBR.

    Parameters
    ----------
    model_fbr:
        The job's FBR normalized to the full GPU (as in Figure 3).
    bandwidth_fraction:
        Fraction of total GPU bandwidth owned by the slice (1.0 for 7g).
    sm_fraction:
        Fraction of the slice's SMs the job may use (1.0 unless an SM cap
        à la GPUlet is in force).
    compute_fraction:
        The slice's share of the GPU's SMs (1.0 for 7g).
    """
    if not 0.0 < bandwidth_fraction <= 1.0:
        raise ValueError(f"bandwidth_fraction out of range: {bandwidth_fraction}")
    if not 0.0 < sm_fraction <= 1.0:
        raise ValueError(f"sm_fraction out of range: {sm_fraction}")
    if not 0.0 < compute_fraction <= 1.0:
        raise ValueError(f"compute_fraction out of range: {compute_fraction}")
    if model_fbr < 0.0:
        raise ValueError(f"negative FBR: {model_fbr}")
    demand = model_fbr * compute_fraction * sm_fraction
    return min(1.0, demand / bandwidth_fraction)


def interference_factor(fbrs: Iterable[float]) -> float:
    """The ``max{Σ FBR, 1}`` contention multiplier of Eq. 1.

    ``fbrs`` must include the subject job's own FBR term. A total demand
    below the slice's bandwidth (Σ < 1) causes no slowdown.
    """
    return max(sum(fbrs), 1.0)


def predicted_execution_time(
    solo_time: float, own_fbr: float, co_located_fbrs: Iterable[float]
) -> float:
    """Eq. 1 — expected execution time of a job on its current slice.

    ``solo_time`` is the job's isolated execution time *on that slice*
    (i.e., already including resource deficiency).
    """
    return solo_time * interference_factor([own_fbr, *co_located_fbrs])


def slowdown_factor(
    rdf: float, own_fbr: float, co_located_fbrs: Iterable[float]
) -> float:
    """Eq. 2 — the slowdown factor η used to rank candidate slices.

    ``rdf`` is the Resource Deficiency Factor of the *incoming* job on the
    candidate slice; ``co_located_fbrs`` are the slice-relative FBR terms of
    the jobs already resident there.
    """
    if rdf < 1.0:
        raise ValueError(f"RDF must be >= 1 (got {rdf}); 7g is the baseline")
    return rdf * interference_factor([own_fbr, *co_located_fbrs])


def resource_deficiency_factor(
    compute_fraction: float,
    bandwidth_fraction: float,
    compute_sensitivity: float,
    bandwidth_sensitivity: float,
) -> float:
    """Synthesize an RDF from slice fractions and model sensitivities.

    The paper measures RDF on hardware; we model it as

        RDF = (1/compute_frac)^α_c × (1/bw_frac)^α_b,

    a standard roofline-style power law. ``α_c`` is high for compute-bound
    models, ``α_b`` for bandwidth-bound ones; both are calibrated per model
    against the paper's quoted anchor points (DESIGN.md).
    """
    if not 0.0 < compute_fraction <= 1.0:
        raise ValueError(f"compute_fraction out of range: {compute_fraction}")
    if not 0.0 < bandwidth_fraction <= 1.0:
        raise ValueError(f"bandwidth_fraction out of range: {bandwidth_fraction}")
    if compute_sensitivity < 0.0 or bandwidth_sensitivity < 0.0:
        raise ValueError("sensitivities must be non-negative")
    rdf = (1.0 / compute_fraction) ** compute_sensitivity
    rdf *= (1.0 / bandwidth_fraction) ** bandwidth_sensitivity
    return max(1.0, rdf)
