"""Rate-based execution engine for MIG slices.

A :class:`GPUSlice` executes :class:`SliceJob` work items under one of two
sharing modes:

- ``MPS`` — all admitted jobs progress concurrently; each job's progress
  rate is ``1 / (RDF × max(Σ FBR, 1))`` per Eq. 1/2 of the paper. Whenever
  the resident set changes, every resident's accumulated work is advanced
  at its old rate and its completion event is rescheduled at the new rate.
  This models interference *continuously*, not just at dispatch.
- ``TIME_SHARE`` — jobs run one at a time in FIFO order at rate ``1/RDF``
  (no interference, but queueing delay), matching the Molecule(beta)
  baseline and the "MIG Only" scheme of Section 2.2.

Jobs whose memory demand exceeds current free slice memory wait in a FIFO
pending queue and are admitted as memory frees up — this is the "spillage"
behaviour discussed around Figure 7.

The slice also integrates busy-time and memory occupancy so the experiment
harness can report the paper's GPU/memory utilization metrics (Figure 10b).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from repro.errors import InsufficientMemoryError, SimulationError
from repro.gpu.mig import SliceProfile
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.simulation.events import Event
from repro.simulation.simulator import Simulator

_job_ids = itertools.count()


def reset_ids() -> None:
    """Restart job numbering (fresh id space per experiment run)."""
    global _job_ids
    _job_ids = itertools.count()


class ShareMode(str, Enum):
    """How concurrently-assigned jobs share a slice."""

    MPS = "mps"
    TIME_SHARE = "time_share"


@dataclass
class JobTiming:
    """Timing decomposition of one completed job (for Figures 2/6/11).

    ``pending_time`` is time spent memory-blocked (or behind other jobs in
    TIME_SHARE mode) inside the slice. ``work`` is the paper's "min possible
    time" (solo 7g execution). ``deficiency_time`` is the extra execution
    time attributable to running on a smaller slice; ``interference_time``
    is the extra time attributable to bandwidth contention with co-located
    jobs. The three execution components always sum to the actual execution
    span: ``finish - start == work + deficiency_time + interference_time``.
    """

    submitted_at: float
    started_at: float
    finished_at: float
    work: float
    rdf: float
    #: Name of the slice that executed the job (for span attribution).
    slice_name: str = ""

    @property
    def pending_time(self) -> float:
        return self.started_at - self.submitted_at

    @property
    def execution_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def deficiency_time(self) -> float:
        return self.work * (self.rdf - 1.0)

    @property
    def interference_time(self) -> float:
        # Guard against tiny negative values from float error.
        return max(0.0, self.execution_time - self.work * self.rdf)


@dataclass
class SliceJob:
    """One unit of GPU work (a request batch) placed on a specific slice.

    ``work`` is the batch's solo execution time on the full GPU (7g);
    ``rdf`` and ``fbr`` are the placement-specific deficiency factor and
    slice-relative bandwidth term computed by the scheduler.
    """

    work: float
    rdf: float
    fbr: float
    memory_gb: float
    on_complete: Callable[["SliceJob", JobTiming], None]
    payload: object = None
    sm_fraction: float = 1.0
    job_id: int = field(default_factory=lambda: next(_job_ids))

    # Runtime state, managed by GPUSlice.
    submitted_at: float = field(default=0.0, repr=False)
    started_at: float = field(default=0.0, repr=False)
    work_done: float = field(default=0.0, repr=False)
    last_update: float = field(default=0.0, repr=False)
    rate: float = field(default=0.0, repr=False)
    _event: Optional[Event] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError(f"job work must be positive, got {self.work}")
        if self.rdf < 1.0:
            raise ValueError(f"RDF must be >= 1, got {self.rdf}")
        if self.fbr < 0.0:
            raise ValueError(f"FBR must be non-negative, got {self.fbr}")
        if self.memory_gb < 0.0:
            raise ValueError(f"memory must be non-negative, got {self.memory_gb}")


class GPUSlice:
    """A single MIG instance executing jobs under a :class:`ShareMode`."""

    def __init__(
        self,
        sim: Simulator,
        profile: SliceProfile,
        mode: ShareMode = ShareMode.MPS,
        *,
        name: str = "",
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.mode = mode
        self.name = name or profile.kind.value
        self.tracer = tracer
        self._jobs_submitted = tracer.telemetry.counter("gpu.jobs_submitted")
        self._jobs_finished = tracer.telemetry.counter("gpu.jobs_completed")
        self._pending_hist = tracer.telemetry.histogram("gpu.pending_time_s")
        self._running: list[SliceJob] = []
        self._pending: deque[SliceJob] = deque()
        self.memory_used = 0.0
        self.completed_jobs = 0
        #: Fault-injection overlay: all execution on this slice runs this
        #: many times slower (1.0 = healthy). See :meth:`set_slowdown`.
        self.slowdown = 1.0
        #: Optional observer invoked as ``observer(slice, busy)`` whenever
        #: the slice transitions between idle and executing (the GPU device
        #: uses this to integrate whole-GPU any-busy time).
        self.busy_observer: Optional[Callable[["GPUSlice", bool], None]] = None
        self._was_busy = False
        # Utilization integrals.
        self._busy_seconds = 0.0
        self._memory_gb_seconds = 0.0
        self._last_account = sim.now
        self._created_at = sim.now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running_jobs(self) -> tuple[SliceJob, ...]:
        """Jobs currently executing (snapshot)."""
        return tuple(self._running)

    @property
    def pending_jobs(self) -> tuple[SliceJob, ...]:
        """Jobs admitted to the slice but not yet executing (snapshot)."""
        return tuple(self._pending)

    @property
    def occupancy(self) -> int:
        """Total jobs attached to the slice (running + pending)."""
        return len(self._running) + len(self._pending)

    @property
    def idle(self) -> bool:
        """True when the slice holds no work at all."""
        return not self._running and not self._pending

    @property
    def memory_free(self) -> float:
        """Free memory in GB (running jobs hold memory; pending do not)."""
        return self.profile.memory_gb - self.memory_used

    @property
    def committed_memory(self) -> float:
        """Memory held by running jobs plus demanded by pending jobs."""
        return self.memory_used + sum(j.memory_gb for j in self._pending)

    @property
    def total_fbr(self) -> float:
        """Σ FBR over currently-running jobs (the Eq. 1 contention sum)."""
        return sum(job.fbr for job in self._running)

    def resident_fbrs(self) -> list[float]:
        """FBR terms of running jobs, for external η computations."""
        return [job.fbr for job in self._running]

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, job: SliceJob) -> None:
        """Admit ``job``; it starts immediately if memory (and the sharing
        mode) allow, otherwise waits in the pending queue.

        Raises :class:`InsufficientMemoryError` if the job can *never* fit
        this slice (its demand exceeds total slice memory).
        """
        if job.memory_gb > self.profile.memory_gb:
            raise InsufficientMemoryError(
                f"job needs {job.memory_gb:.1f} GB > slice "
                f"{self.profile.kind.value} capacity {self.profile.memory_gb:.1f} GB"
            )
        job.submitted_at = self.sim.now
        self._jobs_submitted.inc()
        self._pending.append(job)
        self._account()
        self._admit_pending()
        self._reschedule()

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _account(self) -> None:
        """Fold elapsed time into the utilization integrals."""
        now = self.sim.now
        elapsed = now - self._last_account
        if elapsed > 0:
            if self._running:
                self._busy_seconds += elapsed
            self._memory_gb_seconds += elapsed * self.memory_used
            self._last_account = now

    def _advance_progress(self) -> None:
        """Credit each running job with work done since its last update."""
        now = self.sim.now
        for job in self._running:
            job.work_done += (now - job.last_update) * job.rate
            job.last_update = now

    def _admit_pending(self) -> None:
        """Move pending jobs into the running set as constraints allow."""
        if self.mode is ShareMode.TIME_SHARE:
            while not self._running and self._pending:
                self._start(self._pending.popleft())
            return
        # MPS: admit in FIFO order while memory fits. Strictly FIFO (no
        # skip-ahead) so reordering decisions stay with the scheduler.
        while self._pending and self._pending[0].memory_gb <= self.memory_free:
            self._start(self._pending.popleft())

    def _start(self, job: SliceJob) -> None:
        job.started_at = self.sim.now
        job.last_update = self.sim.now
        self.memory_used += job.memory_gb
        self._running.append(job)
        self._notify_busy()

    def _notify_busy(self) -> None:
        busy = bool(self._running)
        if busy != self._was_busy:
            self._was_busy = busy
            if self.busy_observer is not None:
                self.busy_observer(self, busy)

    def set_slowdown(self, multiplier: float) -> None:
        """Apply a latency multiplier to all execution on this slice.

        Models an injected degradation (thermal throttling, a misbehaving
        neighbour outside the simulated cluster, ECC retirement): every
        resident job's progress rate is divided by ``multiplier`` until
        the overlay is lifted with ``set_slowdown(1.0)``. Progress already
        made is preserved — rates change from *now* on. The extra time
        surfaces in :class:`JobTiming` as interference.
        """
        if multiplier < 1.0:
            raise SimulationError(
                f"slowdown multiplier must be >= 1, got {multiplier}"
            )
        if multiplier == self.slowdown:
            return
        self.slowdown = multiplier
        self._account()
        self._reschedule()

    def _reschedule(self) -> None:
        """Recompute every running job's rate and completion event."""
        self._advance_progress()
        if self.mode is ShareMode.MPS:
            factor = max(self.total_fbr, 1.0)
        else:
            factor = 1.0
        factor *= self.slowdown
        now = self.sim.now
        for job in self._running:
            job.rate = 1.0 / (job.rdf * factor)
            remaining = max(job.work - job.work_done, 0.0)
            self.sim.cancel(job._event)
            job._event = self.sim.at(
                now + remaining * job.rdf * factor,
                lambda j=job: self._finish(j),
                label=f"slice-{self.name}-finish",
            )

    def _finish(self, job: SliceJob) -> None:
        self._account()
        self._advance_progress()
        job._event = None
        try:
            self._running.remove(job)
        except ValueError as exc:  # pragma: no cover - invariant guard
            raise SimulationError(f"finishing job not running: {job!r}") from exc
        self.memory_used -= job.memory_gb
        if self.memory_used < -1e-9:  # pragma: no cover - invariant guard
            raise SimulationError("slice memory accounting went negative")
        self.memory_used = max(0.0, self.memory_used)
        self.completed_jobs += 1
        self._jobs_finished.inc()
        timing = JobTiming(
            submitted_at=job.submitted_at,
            started_at=job.started_at,
            finished_at=self.sim.now,
            work=job.work,
            rdf=job.rdf,
            slice_name=self.name,
        )
        self._pending_hist.observe(timing.pending_time)
        self._admit_pending()
        self._reschedule()
        self._notify_busy()
        job.on_complete(job, timing)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def abort_all(self) -> list[SliceJob]:
        """Cancel every running and pending job without completing them.

        Used when the hosting node is evicted: the jobs' payloads are
        resubmitted elsewhere, so their completion callbacks here must
        never fire. Returns the aborted jobs.
        """
        self._account()
        self._advance_progress()
        aborted = list(self._running) + list(self._pending)
        for job in self._running:
            self.sim.cancel(job._event)
            job._event = None
        self._running.clear()
        self._pending.clear()
        self.memory_used = 0.0
        self._notify_busy()
        return aborted

    # ------------------------------------------------------------------
    # Utilization
    # ------------------------------------------------------------------
    def utilization_snapshot(self) -> tuple[float, float, float]:
        """Return ``(busy_seconds, memory_gb_seconds, lifetime_seconds)``."""
        self._account()
        return (
            self._busy_seconds,
            self._memory_gb_seconds,
            self.sim.now - self._created_at,
        )
