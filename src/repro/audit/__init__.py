"""Runtime invariant auditing: conservation laws checked continuously.

Every result this repo produces rests on the simulator's bookkeeping
being exact. The audit subsystem attaches an
:class:`~repro.audit.auditor.Auditor` to a live run through the
platform's observer hooks and verifies, continuously, that requests,
GPU memory, MIG geometry, the clock, and spot lifecycles all conserve —
see :data:`~repro.audit.violations.CHECK_GROUPS`.

Typical use::

    config = ExperimentConfig(audit=True)
    result = run_scheme("protean", config)
    assert result.audit.ok, result.audit.describe()

or from the CLI: ``python -m repro audit default`` (all registered
schemes) and ``python -m repro audit fig9 --fault-demo`` (under faults).
"""

from repro.audit.auditor import DEFAULT_AUDIT_INTERVAL, Auditor
from repro.audit.violations import CHECK_GROUPS, AuditReport, AuditViolation

__all__ = [
    "AuditReport",
    "AuditViolation",
    "Auditor",
    "CHECK_GROUPS",
    "DEFAULT_AUDIT_INTERVAL",
]
