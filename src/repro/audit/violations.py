"""Structured audit findings: violations and the per-run report.

An :class:`AuditViolation` is one detected breach of a conservation
invariant; an :class:`AuditReport` is the end-of-run rollup the
:class:`~repro.audit.auditor.Auditor` returns from ``finalize()``. Both
are plain frozen data — picklable across the parallel runner's process
boundary and JSON-serialisable for CLI/CI consumption.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The invariant groups the auditor enforces (violation ``check`` values
#: are ``"<group>.<detail>"`` strings, e.g. ``"memory.bounds"``).
CHECK_GROUPS = (
    "request",   # lifecycle conservation: admit/complete exactly once
    "memory",    # per-slice GPU memory accounting
    "geometry",  # MIG geometry legality and reconfiguration quiescence
    "clock",     # monotonic time, no activity on tombstoned entities
    "spot",      # VM/node lifecycle agreement under eviction/crash
    "tenant",    # tenancy contracts: quotas, registration, exclusivity
    "pipeline",  # workflow lifecycle: stage ordering, exactly-once stages
)


@dataclass(frozen=True)
class AuditViolation:
    """One detected breach of a simulator conservation invariant."""

    #: Dotted check name, ``"<group>.<detail>"`` with the group drawn
    #: from :data:`CHECK_GROUPS` (e.g. ``"request.duplicate_completion"``).
    check: str
    #: Human-readable description of what went wrong.
    message: str
    #: Simulated time at which the breach was detected.
    time: float
    #: The entity involved (slice/GPU/VM/node name, ``request<N>``, ...).
    subject: str = ""

    @property
    def group(self) -> str:
        """The invariant group this violation belongs to."""
        return self.check.split(".", 1)[0]

    def describe(self) -> str:
        """One-line rendering for reports and fail-fast exceptions."""
        where = f" [{self.subject}]" if self.subject else ""
        return f"t={self.time:9.3f}  {self.check}{where}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "check": self.check,
            "message": self.message,
            "time": self.time,
            "subject": self.subject,
        }


@dataclass(frozen=True)
class AuditReport:
    """End-of-run audit rollup: violations plus conservation totals."""

    violations: tuple[AuditViolation, ...] = ()
    #: Periodic invariant sweeps executed (including the final one).
    sweeps: int = 0
    #: Requests that entered the platform (ingested past the gateway).
    admitted: int = 0
    #: Distinct requests completed (each exactly once when ``ok``).
    completed: int = 0
    #: Requests still queued somewhere at drain end — legitimate residue
    #: of an overloaded run, counted (not a violation) because every one
    #: was located in a live queue/buffer/backlog.
    residual: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def by_group(self) -> dict[str, int]:
        """Violation counts keyed by invariant group."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.group] = counts.get(violation.group, 0) + 1
        return counts

    def describe(self) -> str:
        """Multi-line report for CLI output."""
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        lines = [
            f"audit: {status}  "
            f"(admitted={self.admitted} completed={self.completed} "
            f"residual={self.residual} sweeps={self.sweeps})"
        ]
        for violation in self.violations:
            lines.append(f"  {violation.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready representation (for extras / CI artifacts)."""
        return {
            "ok": self.ok,
            "sweeps": self.sweeps,
            "admitted": self.admitted,
            "completed": self.completed,
            "residual": self.residual,
            "violations": [v.to_dict() for v in self.violations],
        }
