"""The runtime auditor: continuous conservation checking for one run.

The :class:`Auditor` attaches to a live platform through the same cheap
observer hooks the observability stack uses (``request_observers``,
``completion_observers``) plus one periodic sweep event, and verifies the
seven invariant groups of :data:`~repro.audit.violations.CHECK_GROUPS`:

1. **request** — every admitted request completes *exactly once*; none
   are stranded at drain (outstanding requests must be locatable in a
   batcher buffer, dispatcher backlog, scheduler queue, or GPU slice).
2. **memory** — per-slice allocated memory is never negative, never
   exceeds slice capacity, always equals the resident jobs' demand, and
   is fully freed on node teardown.
3. **geometry** — every GPU's geometry is a legal A100 partitioning and
   no work is resident mid-reconfiguration (MIG destroy requires idle).
4. **clock** — simulated time and the event counter are monotonic; no
   tombstoned (retired) entity still holds or executes work.
5. **spot** — VM and node lifecycles agree: terminated VMs have retired
   nodes, eviction notices imply draining, retired nodes are detached
   from the dispatcher.
6. **tenant** — tenancy contracts hold (only when the run declares
   tenants): every admitted request carries a registered tenant id, no
   tenant's in-flight concurrency exceeds its quota while admission
   enforcement is on, and exclusive tenants are never co-located on a
   GPU slice with another tenant's work. The auditor keeps its *own*
   per-tenant in-flight ledger from the observer hooks, independent of
   the admission controller it is checking.
7. **pipeline** — workflow lifecycle contracts hold (only when the run
   declares pipelines): every stage request belongs to the declared DAG
   and to a workflow whose root was seen, no stage is admitted before
   all of its parents completed, no (workflow, stage) pair completes
   more than once, and at drain no workflow is left with a stage whose
   parents all finished long enough ago for the handoff to have fired
   but which was never admitted (an *orphaned* stage — the workflow can
   then neither complete nor be accounted as rejected). The auditor
   keeps its *own* (workflow, stage) completion ledger from the
   observer hooks, independent of the pipeline runtime it is checking.

The auditor mutates nothing and draws no RNG, so an audited run produces
bit-identical metrics to an unaudited one (the sweep events shift event
sequence numbers but never reorder ties between other events); the
determinism regression test pins this. Violations are collected into an
:class:`~repro.audit.violations.AuditReport`, or raised immediately as
:class:`~repro.errors.AuditViolationError` in fail-fast mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.node import NodeState, WorkerNode
from repro.cluster.vm import VMState
from repro.errors import AuditError, AuditViolationError, InvalidGeometryError
from repro.gpu.mig import validate_geometry
from repro.observability.span import CATEGORY_AUDIT
from repro.serverless.request import RequestBatch
from repro.simulation.processes import PeriodicProcess
from repro.simulation.simulator import Simulator

from repro.audit.violations import AuditReport, AuditViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.engine import JobTiming
    from repro.serverless.platform import ServerlessPlatform
    from repro.serverless.request import Request

#: Default seconds of simulated time between invariant sweeps.
DEFAULT_AUDIT_INTERVAL = 5.0

#: Slack for floating-point memory accounting (GB).
_MEMORY_EPS = 1e-6
#: Slack for clock comparisons (seconds).
_TIME_EPS = 1e-9


class Auditor:
    """Continuously audits one platform/simulator pair.

    Lifecycle: construct, :meth:`arm` before the run starts, then
    :meth:`finalize` after the simulation drains to obtain the
    :class:`AuditReport`. :meth:`sweep` may also be invoked directly
    (the planted-bug tests do) to force an immediate invariant pass.
    """

    def __init__(
        self,
        sim: Simulator,
        platform: "ServerlessPlatform",
        *,
        interval: float = DEFAULT_AUDIT_INTERVAL,
        fail_fast: bool = False,
    ) -> None:
        if interval <= 0:
            raise AuditError(f"audit interval must be positive, got {interval}")
        self.sim = sim
        self.platform = platform
        self.fail_fast = fail_fast
        self.violations: list[AuditViolation] = []
        self._admitted: set[int] = set()
        self._completions: dict[int, int] = {}
        #: Independent per-tenant in-flight ledger (admits − completions);
        #: populated only when the platform runs with tenancy.
        self._tenant_in_flight: dict[str, int] = {}
        #: Independent workflow ledgers (populated only when the platform
        #: runs with pipelines): workflows whose root stage was admitted,
        #: workflow → admitted stages, and workflow → stage →
        #: (completion count, last completion time).
        self._pipeline_workflows: set[str] = set()
        self._pipeline_admitted: dict[str, set[str]] = {}
        self._pipeline_completions: dict[str, dict[str, tuple[int, float]]] = {}
        self._sweeps = 0
        self._last_now = sim.now
        self._last_events = sim.events_processed
        self._armed = False
        self._finalized = False
        #: GPU name → owning node, for completion-time spot checks.
        self._gpu_owner: dict[str, WorkerNode] = {}
        self._process = PeriodicProcess(
            sim, interval, self.sweep, label="audit-sweep"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Hook the platform observers and start the periodic sweep."""
        if self._armed:
            raise AuditError("auditor already armed")
        self._armed = True
        self.platform.request_observers.append(self._on_admit)
        self.platform.completion_observers.append(self._on_completion)
        self._process.start()

    def finalize(self) -> AuditReport:
        """Stop sweeping, run the drain-time conservation checks, and
        return the report. Idempotent: later calls return the same report.
        """
        if self._finalized:
            return self.report()
        self._finalized = True
        self._process.stop()
        self.sweep()
        self._check_pipeline_orphans()
        residual = self._check_request_conservation()
        return self.report(residual=residual)

    def report(self, *, residual: int = 0) -> AuditReport:
        """The report for the run so far."""
        return AuditReport(
            violations=tuple(self.violations),
            sweeps=self._sweeps,
            admitted=len(self._admitted),
            completed=len(self._completions),
            residual=residual,
        )

    # ------------------------------------------------------------------
    # Observer hooks (hot path: one set op / dict op per request)
    # ------------------------------------------------------------------
    def _on_admit(self, request: "Request") -> None:
        rid = request.request_id
        if rid in self._admitted:
            self._violate(
                "request.duplicate_admission",
                "request ingested twice",
                subject=f"request{rid}",
            )
        self._admitted.add(rid)
        if request.workflow is not None:
            self._audit_stage_admission(request)
        tenancy = self.platform.tenancy
        if tenancy is not None:
            tenant_id = request.tenant
            if tenant_id not in tenancy.tenant_set:
                self._violate(
                    "tenant.unregistered",
                    f"admitted request carries unregistered tenant "
                    f"{tenant_id!r} (registered: "
                    f"{list(tenancy.tenant_set.ids)})",
                    subject=f"request{rid}",
                )
            ledger = self._tenant_in_flight
            ledger[tenant_id] = ledger.get(tenant_id, 0) + 1

    def _on_completion(self, batch: RequestBatch, timing: "JobTiming") -> None:
        completions = self._completions
        for request in batch.requests:
            rid = request.request_id
            count = completions.get(rid, 0) + 1
            completions[rid] = count
            if count > 1:
                self._violate(
                    "request.duplicate_completion",
                    f"request completed {count} times "
                    f"(batch{batch.batch_id} on {timing.slice_name})",
                    subject=f"request{rid}",
                )
            elif rid not in self._admitted:
                self._violate(
                    "request.phantom_completion",
                    f"request completed but was never admitted "
                    f"(batch{batch.batch_id})",
                    subject=f"request{rid}",
                )
        if self.platform.tenancy is not None:
            ledger = self._tenant_in_flight
            for request in batch.requests:
                ledger[request.tenant] = ledger.get(request.tenant, 0) - 1
        for request in batch.requests:
            if request.workflow is not None:
                self._audit_stage_completion(request, timing)
        owner = self._owner_of(timing.slice_name)
        if owner is not None and owner.vm.state is VMState.TERMINATED:
            self._violate(
                "spot.work_after_eviction",
                f"batch{batch.batch_id} completed on {timing.slice_name} "
                f"after its VM terminated",
                subject=owner.name,
            )

    def _owner_of(self, slice_name: str) -> WorkerNode | None:
        gpu_name = slice_name.split("/", 1)[0]
        nodes = self.platform.all_nodes
        if len(self._gpu_owner) != len(nodes):
            self._gpu_owner = {node.gpu.name: node for node in nodes}
        return self._gpu_owner.get(gpu_name)

    # ------------------------------------------------------------------
    # Pipeline workflow lifecycle
    # ------------------------------------------------------------------
    def _audit_stage_admission(self, request: "Request") -> None:
        """Check one workflow-tagged admission against the declared DAG."""
        runtime = self.platform.pipelines
        workflow = request.workflow
        stage = request.stage
        rid = request.request_id
        if runtime is None:
            self._violate(
                "pipeline.unknown_workflow",
                f"request carries workflow lineage ({workflow}/{stage}) "
                "but no pipeline runtime is armed",
                subject=f"request{rid}",
            )
            return
        compiled = runtime.compiled
        if stage not in compiled.parents:
            self._violate(
                "pipeline.unknown_workflow",
                f"stage {stage!r} is not a stage of pipeline "
                f"{runtime.spec.name!r}",
                subject=f"request{rid}",
            )
            return
        if stage in compiled.roots:
            self._pipeline_workflows.add(workflow)
        elif workflow not in self._pipeline_workflows:
            self._violate(
                "pipeline.unknown_workflow",
                f"non-root stage {stage!r} admitted for workflow "
                f"{workflow!r} whose root was never seen",
                subject=f"{workflow}/{stage}",
            )
        completions = self._pipeline_completions.get(workflow, {})
        for parent in compiled.parents[stage]:
            if parent not in completions:
                self._violate(
                    "pipeline.premature_stage",
                    f"stage {stage!r} admitted before parent {parent!r} "
                    "completed",
                    subject=f"{workflow}/{stage}",
                )
        self._pipeline_admitted.setdefault(workflow, set()).add(stage)

    def _audit_stage_completion(
        self, request: "Request", timing: "JobTiming"
    ) -> None:
        """Count (workflow, stage) completions; flag any second one."""
        workflow = request.workflow
        stage = request.stage
        ledger = self._pipeline_completions.setdefault(workflow, {})
        count, _ = ledger.get(stage, (0, 0.0))
        ledger[stage] = (count + 1, timing.finished_at)
        if count + 1 > 1:
            self._violate(
                "pipeline.double_completion",
                f"stage {stage!r} completed {count + 1} times via "
                f"distinct requests (latest request{request.request_id})",
                subject=f"{workflow}/{stage}",
            )

    def _check_pipeline_orphans(self) -> None:
        """Drain-time check: no workflow is wedged on a never-admitted stage.

        A stage whose parents all completed at least ``handoff_latency``
        before drain end should itself have been admitted; if it never
        was, its workflow can neither complete nor be accounted as
        rejected — it is silently abandoned. The handoff-plus-epsilon
        grace window keeps legitimately in-flight handoffs (parents
        finished at the very end of the drain) from false-positiving.
        """
        runtime = self.platform.pipelines
        if runtime is None:
            return
        compiled = runtime.compiled
        grace = runtime.spec.handoff_latency + _TIME_EPS
        now = self.sim.now
        for workflow in sorted(self._pipeline_workflows):
            completions = self._pipeline_completions.get(workflow, {})
            if all(sink in completions for sink in compiled.sinks):
                continue  # workflow finished; nothing can be orphaned
            admitted = self._pipeline_admitted.get(workflow, set())
            for stage in compiled.order:
                if stage in admitted:
                    continue
                parents = compiled.parents[stage]
                if not parents:
                    continue  # roots are admitted by the trace, not released
                if all(parent in completions for parent in parents):
                    ready_at = max(
                        completions[parent][1] for parent in parents
                    )
                    if ready_at <= now - grace:
                        self._violate(
                            "pipeline.orphaned_stage",
                            f"stage {stage!r} ready at t={ready_at:.3f} "
                            f"(all parents complete) but never admitted "
                            f"by drain end",
                            subject=f"{workflow}/{stage}",
                        )

    # ------------------------------------------------------------------
    # Periodic sweep
    # ------------------------------------------------------------------
    def sweep(self) -> None:
        """One full invariant pass over the platform's live structures."""
        self._sweeps += 1
        self._check_clock()
        for node in self.platform.all_nodes:
            self._check_gpu(node)
            self._check_lifecycle(node)
        if self.platform.tenancy is not None:
            self._check_tenancy()

    def _check_tenancy(self) -> None:
        tenancy = self.platform.tenancy
        if tenancy.spec.admission:
            # Quotas are an admission contract; without enforcement a
            # tenant exceeding its nominal quota is expected, not a bug.
            for tenant in tenancy.tenant_set:
                if tenant.quota is None:
                    continue
                in_flight = self._tenant_in_flight.get(tenant.tenant_id, 0)
                if in_flight > tenant.quota:
                    self._violate(
                        "tenant.quota_exceeded",
                        f"{in_flight} requests in flight against a quota "
                        f"of {tenant.quota}",
                        subject=tenant.tenant_id,
                    )
        exclusive = {
            t.tenant_id for t in tenancy.tenant_set if t.exclusive
        }
        if not exclusive:
            return
        for node in self.platform.all_nodes:
            for gpu_slice in node.gpu.slices:
                resident: set[str] = set()
                for job in gpu_slice.running_jobs + gpu_slice.pending_jobs:
                    payload = job.payload
                    tenant_id = getattr(payload, "tenant", None)
                    if tenant_id is not None:
                        resident.add(tenant_id)
                if len(resident) > 1 and resident & exclusive:
                    self._violate(
                        "tenant.exclusive_colocation",
                        f"exclusive tenant(s) "
                        f"{sorted(resident & exclusive)} share the slice "
                        f"with {sorted(resident - exclusive) or sorted(resident)}",
                        subject=gpu_slice.name,
                    )

    def _check_clock(self) -> None:
        now = self.sim.now
        if now < self._last_now - _TIME_EPS:
            self._violate(
                "clock.backwards",
                f"simulated time moved backwards: {now} < {self._last_now}",
            )
        events = self.sim.events_processed
        if events < self._last_events:
            self._violate(
                "clock.event_counter",
                f"events_processed decreased: {events} < {self._last_events}",
            )
        self._last_now = max(now, self._last_now)
        self._last_events = max(events, self._last_events)

    def _check_gpu(self, node: WorkerNode) -> None:
        gpu = node.gpu
        try:
            validate_geometry(gpu.geometry.kinds)
        except InvalidGeometryError as exc:
            self._violate("geometry.invalid", str(exc), subject=gpu.name)
        if gpu.reconfiguring and any(s.occupancy for s in gpu.slices):
            self._violate(
                "geometry.busy_reconfiguration",
                "work resident on a GPU mid-reconfiguration "
                "(MIG destroy requires idle instances)",
                subject=gpu.name,
            )
        for gpu_slice in gpu.slices:
            used = gpu_slice.memory_used
            capacity = gpu_slice.profile.memory_gb
            if used < -_MEMORY_EPS:
                self._violate(
                    "memory.negative",
                    f"slice memory went negative: {used:.6f} GB",
                    subject=gpu_slice.name,
                )
            if used > capacity + _MEMORY_EPS:
                self._violate(
                    "memory.over_capacity",
                    f"slice memory {used:.3f} GB exceeds capacity "
                    f"{capacity:.3f} GB",
                    subject=gpu_slice.name,
                )
            resident = sum(j.memory_gb for j in gpu_slice.running_jobs)
            if abs(used - resident) > _MEMORY_EPS:
                self._violate(
                    "memory.leak",
                    f"slice accounts {used:.3f} GB but resident jobs "
                    f"hold {resident:.3f} GB",
                    subject=gpu_slice.name,
                )

    def _check_lifecycle(self, node: WorkerNode) -> None:
        vm_state = node.vm.state
        if vm_state is VMState.TERMINATED and node.state is not NodeState.RETIRED:
            self._violate(
                "spot.zombie_node",
                f"VM terminated but node is {node.state.value}",
                subject=node.name,
            )
        if vm_state is VMState.EVICTION_NOTICE and node.state is NodeState.ACTIVE:
            self._violate(
                "spot.notice_ignored",
                "eviction notice received but node still accepting work",
                subject=node.name,
            )
        if node.state is NodeState.RETIRED:
            if any(s.occupancy for s in node.gpu.slices):
                self._violate(
                    "clock.tombstoned_activity",
                    "retired node still holds GPU work",
                    subject=node.name,
                )
            leaked = sum(s.memory_used for s in node.gpu.slices)
            if leaked > _MEMORY_EPS:
                self._violate(
                    "memory.teardown_leak",
                    f"retired node still accounts {leaked:.3f} GB of "
                    f"slice memory",
                    subject=node.name,
                )
            if self.platform.dispatcher.try_scheduler_for(node) is not None:
                self._violate(
                    "spot.dangling_scheduler",
                    "retired node still registered with the dispatcher",
                    subject=node.name,
                )

    # ------------------------------------------------------------------
    # Drain-time conservation
    # ------------------------------------------------------------------
    def _check_request_conservation(self) -> int:
        """Locate every admitted-but-uncompleted request; flag the rest.

        Returns the residual count (requests legitimately still queued at
        drain end — batcher buffers, dispatcher backlog, scheduler queues,
        GPU-resident batches). Any outstanding request *not* found in one
        of those places leaked out of the system and is a violation.
        """
        outstanding = self._admitted - set(self._completions)
        if not outstanding:
            return 0
        located: set[int] = set()
        platform = self.platform
        for request in platform.batcher.buffered_requests():
            located.add(request.request_id)
        for batch in platform.dispatcher.backlog_batches:
            located.update(r.request_id for r in batch.requests)
        for scheduler in platform.dispatcher.schedulers():
            for batch in scheduler.attached_batches():
                located.update(r.request_id for r in batch.requests)
        for node in platform.all_nodes:
            for gpu_slice in node.gpu.slices:
                for job in gpu_slice.running_jobs + gpu_slice.pending_jobs:
                    payload = job.payload
                    if isinstance(payload, RequestBatch):
                        located.update(
                            r.request_id for r in payload.requests
                        )
        stranded = outstanding - located
        for rid in sorted(stranded):
            self._violate(
                "request.stranded",
                "admitted request neither completed nor locatable in any "
                "queue at drain",
                subject=f"request{rid}",
            )
        return len(outstanding & located)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _violate(self, check: str, message: str, *, subject: str = "") -> None:
        violation = AuditViolation(
            check=check, message=message, time=self.sim.now, subject=subject
        )
        self.violations.append(violation)
        tracer = self.platform.tracer
        if tracer.enabled:
            tracer.instant(
                "audit.violation",
                category=CATEGORY_AUDIT,
                track="audit",
                check=check,
                subject=subject,
                message=message,
            )
        if self.fail_fast:
            raise AuditViolationError(violation.describe())
