"""Worker-side execution: run one request, return a detached result.

:func:`execute_request` is the single code path for *both* the serial
fallback and pool workers — the parent and the workers literally run the
same function, which is what makes ``--jobs 1`` vs ``--jobs N``
bit-identity hold by construction rather than by testing alone.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, run_scheme
from repro.parallel.request import RunRequest


def execute_request(request: RunRequest) -> ExperimentResult:
    """Run ``request`` and return the detached (picklable) result.

    The run is seeded entirely by ``request.config``; nothing from the
    submitting process leaks in, so executing here or in a pool worker
    yields the same summary, measured records, extras, and span log.
    """
    specs = (
        request.specs_builder(request.config)
        if request.specs_builder is not None
        else None
    )
    live = run_scheme(request.scheme, request.config, specs=specs)
    derived = {}
    if request.postprocess is not None:
        derived = request.postprocess(live)
        if not isinstance(derived, dict):
            raise TypeError(
                f"postprocess for {request.key!r} must return a dict, "
                f"got {type(derived).__name__}"
            )
    result = live.detach()
    if derived:
        result.extras.update(derived)
    return result


def worker_init() -> None:
    """Pool-worker initializer: force nested work onto the serial path.

    A worker that itself fanned out (e.g. a suite worker whose figure
    calls ``compare()`` while ``REPRO_JOBS`` is exported) would multiply
    processes out of control; inside a worker the ambient job count is
    pinned to 1.
    """
    from repro.parallel import pool

    pool.set_default_jobs(1)
