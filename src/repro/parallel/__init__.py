"""Parallel experiment execution: process fan-out for run work-lists.

Every experiment run in this repo is an isolated, seeded, deterministic
simulation — the embarrassingly-parallel shape. This package fans
work-lists of :class:`RunRequest` declarations out across a
``ProcessPoolExecutor`` while guaranteeing results bit-identical to
serial execution (same seeds, same summaries, id-normalised span logs,
merge order keyed by submission index). See ``docs/parallel_runner.md``
for the worker model and the pickling contract.

Typical use::

    from repro.parallel import RunRequest, execute_keyed

    requests = [
        RunRequest(key=s, scheme=s, config=config)
        for s in ("protean", "molecule")
    ]
    results = execute_keyed(requests, jobs=4)   # {scheme: detached result}

or simply pass ``jobs=`` to :func:`repro.experiments.run_comparison`,
``--jobs`` to the ``figure`` / ``compare`` / ``reproduce-all`` CLI
commands, or export ``REPRO_JOBS``.
"""

from repro.parallel.pool import (
    JOBS_ENV_VAR,
    cpu_jobs,
    execute_keyed,
    execute_runs,
    mp_context,
    resolve_jobs,
    set_default_jobs,
    using_jobs,
)
from repro.parallel.request import RunRequest
from repro.parallel.worker import execute_request, worker_init

__all__ = [
    "JOBS_ENV_VAR",
    "RunRequest",
    "cpu_jobs",
    "execute_keyed",
    "execute_request",
    "execute_runs",
    "mp_context",
    "resolve_jobs",
    "set_default_jobs",
    "using_jobs",
    "worker_init",
]
