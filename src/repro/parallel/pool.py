"""Process-pool execution of run work-lists with a serial twin.

Determinism contract
--------------------
``execute_runs`` guarantees bit-identical output to a serial loop:

- every run is seeded entirely by its ``RunRequest`` (config embeds the
  seed; workers rebuild request streams from it deterministically);
- the serial fallback and pool workers execute the *same* function
  (:func:`repro.parallel.worker.execute_request`);
- results merge in **submission order** (keyed by submission index),
  never in completion order;
- span logs are id-normalised on detach, so even trace digests match.

Job-count resolution, in priority order: explicit ``jobs`` argument →
ambient default (:func:`using_jobs` / :func:`set_default_jobs`, used by
the CLI and pinned to 1 inside pool workers) → the ``REPRO_JOBS``
environment variable → the caller-supplied fallback (library entry
points default to serial; the CLI defaults to ``os.cpu_count()``).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import time
import warnings
from contextlib import contextmanager
from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult
from repro.parallel.request import RunRequest
from repro.parallel.worker import execute_request, worker_init

#: Environment variable consulted when no explicit/ambient count is set.
JOBS_ENV_VAR = "REPRO_JOBS"

_default_jobs: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Set (or clear, with ``None``) the ambient job count."""
    global _default_jobs
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    _default_jobs = jobs


@contextmanager
def using_jobs(jobs: int | None):
    """Scope an ambient job count (the CLI wraps commands in this)."""
    previous = _default_jobs
    set_default_jobs(jobs)
    try:
        yield
    finally:
        set_default_jobs(previous)


def cpu_jobs() -> int:
    """The machine's core count (the CLI's default fan-out width)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None = None, *, default: int = 1) -> int:
    """Resolve an effective job count (see module docstring for order)."""
    if jobs is not None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        return jobs
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(f"{JOBS_ENV_VAR} must be >= 1, got {value}")
        return value
    return default


def mp_context():
    """The multiprocessing context used for worker pools.

    Prefers ``fork`` (no re-import cost per worker; identical module
    state) and falls back to ``spawn`` where fork is unavailable.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _timed_execute(request: RunRequest) -> tuple[float, ExperimentResult]:
    started = time.perf_counter()
    result = execute_request(request)
    return time.perf_counter() - started, result


def _all_picklable(requests: list[RunRequest]) -> bool:
    try:
        pickle.dumps(requests)
    except Exception:
        return False
    return True


def execute_runs(
    requests: list[RunRequest],
    *,
    jobs: int | None = None,
    progress: Callable[[str, float], None] | None = None,
) -> list[ExperimentResult]:
    """Execute a work-list of runs, fanning out across processes.

    Returns detached results in **submission order** (``results[i]``
    answers ``requests[i]``). ``progress(key, seconds)`` is invoked as
    each run completes — out of submission order under fan-out, which is
    the only observable difference from the serial path.

    Falls back to the serial twin when the effective job count is 1, the
    work-list has a single entry, or a request is unpicklable (custom
    schemes built from closures) — with a warning in the last case, so a
    silently-serial sweep never masquerades as a parallel one.
    """
    keys = [request.key for request in requests]
    if len(set(keys)) != len(keys):
        raise ConfigurationError(f"duplicate run keys in work-list: {keys}")
    workers = min(resolve_jobs(jobs), len(requests))
    if workers > 1 and not _all_picklable(requests):
        warnings.warn(
            "work-list contains unpicklable requests (closure-built scheme "
            "or hook?); falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    if workers <= 1:
        results = []
        for request in requests:
            seconds, result = _timed_execute(request)
            if progress is not None:
                progress(request.key, seconds)
            results.append(result)
        return results
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        mp_context=mp_context(),
        initializer=worker_init,
    ) as pool:
        futures = [pool.submit(_timed_execute, request) for request in requests]
        if progress is not None:
            by_future = dict(zip(futures, requests))
            for future in concurrent.futures.as_completed(futures):
                error = future.exception()
                if error is None:
                    seconds, _ = future.result()
                    progress(by_future[future].key, seconds)
        # Merge keyed by submission index — completion order never leaks.
        return [future.result()[1] for future in futures]


def execute_keyed(
    requests: list[RunRequest],
    *,
    jobs: int | None = None,
    progress: Callable[[str, float], None] | None = None,
) -> dict[str, ExperimentResult]:
    """:func:`execute_runs`, returned as a ``{request.key: result}`` dict.

    Insertion order follows submission order, so iterating the mapping is
    as deterministic as the list form.
    """
    results = execute_runs(requests, jobs=jobs, progress=progress)
    return {
        request.key: result for request, result in zip(requests, results)
    }
