"""The unit of parallel work: one (scheme, config) run declaration.

A :class:`RunRequest` is everything a worker process needs to reproduce
one experiment run bit-identically: the scheme (registry name or a
picklable :class:`~repro.serverless.scheme.Scheme` instance), the full
:class:`~repro.experiments.config.ExperimentConfig` (which embeds the
seed), and two optional *module-level* hooks:

- ``specs_builder(config) -> list[RequestSpec]`` replaces the default
  :func:`~repro.experiments.runner.build_specs` trace generation (e.g.
  Figure 2 merges two request streams). It must be deterministic in
  ``config`` — each worker rebuilds the stream from scratch, and the
  serial path does the same, so both sides see identical specs.
- ``postprocess(result) -> dict`` runs in the worker against the *live*
  :class:`~repro.experiments.runner.ExperimentResult` (platform still
  attached) and returns a picklable dict merged into the detached
  result's ``extras``. This is how figures that read platform internals
  (e.g. Figure 7's reconfigurator geometry log) survive the process
  boundary.

Both hooks must be importable top-level functions (pickled by reference);
lambdas or closures force the batch onto the serial fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.config import ExperimentConfig


@dataclass(frozen=True)
class RunRequest:
    """One declared experiment run in a work-list."""

    #: Merge key: results come back addressable by this (unique per batch).
    key: str
    #: Scheme registry name or a picklable Scheme instance.
    scheme: object
    config: ExperimentConfig
    #: Optional module-level trace builder (see module docstring).
    specs_builder: Callable | None = None
    #: Optional module-level worker-side extractor (see module docstring).
    postprocess: Callable | None = None
