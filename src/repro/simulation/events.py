"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic calendar-queue design: callbacks are scheduled at
absolute simulated times and executed in time order. Events are *handles* —
they can be cancelled or rescheduled, which the GPU execution engine relies
on heavily (a job's completion event moves every time its co-location set
changes).

Ties are broken by (priority, sequence number) so that same-timestamp events
execute in a deterministic order: lower priority value first, then FIFO.

Performance note: the heap stores ``(time, priority, seq, event)`` tuples
rather than the :class:`Event` objects themselves. Tuple comparison runs
entirely in C, so heap sifts never re-enter the interpreter — replacing the
dataclass-generated ``__lt__`` this way removed the single largest item
from the simulator's dispatch profile (~1.5M Python-frame comparisons per
minute of simulated time at fig05 load).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import ClockError, EventCancelledError

#: Default priority for ordinary events.
PRIORITY_NORMAL = 100
#: Priority for bookkeeping that must run before ordinary events at a tick.
PRIORITY_EARLY = 10
#: Priority for work that must observe all ordinary events at a tick.
PRIORITY_LATE = 1000


class Event:
    """A scheduled callback.

    Instances are created through :meth:`EventQueue.schedule`; user code
    holds them only to call :meth:`cancel`. Ordering lives in the queue's
    key tuples, not on the event itself.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Mark the event dead; the queue drops it when it surfaces.

        Callers must go through :meth:`EventQueue.cancel` /
        :meth:`Simulator.cancel` (as :class:`OneShotTimer` does) — calling
        this directly leaves the queue's live count stale.
        """
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired/cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {self.label!r}, {state})"


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects.

    Cancellation is lazy: cancelled events stay in the heap and are skipped
    on pop. :meth:`compact` may be called if the fraction of dead entries
    grows large (the simulator does this automatically).
    """

    def __init__(self) -> None:
        #: Heap of ``(time, priority, seq, event)`` — compared in C.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Insert ``callback`` to run at simulated ``time``; return its handle."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, callback, label)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event``. Idempotent errors are surfaced to catch bugs."""
        if event.cancelled:
            raise EventCancelledError(f"event already cancelled: {event!r}")
        if event.fired:
            raise EventCancelledError(f"event already fired: {event!r}")
        event.cancel()
        self._live -= 1

    def cancel_if_pending(self, event: Event | None) -> None:
        """Cancel ``event`` unless it is ``None``, fired, or cancelled."""
        if event is not None and not event.cancelled and not event.fired:
            self.cancel(event)

    def peek_time(self) -> float:
        """Return the timestamp of the next live event.

        Raises :class:`IndexError` when the queue is empty.
        """
        self._drop_dead()
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises :class:`IndexError` when the queue is empty.
        """
        self._drop_dead()
        event = heapq.heappop(self._heap)[3]
        event.fired = True
        self._live -= 1
        return event

    def compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        The rebuild is **in place** (slice assignment on the existing
        list, never a rebind): :meth:`Simulator.run` inlines the dispatch
        loop around a local binding of this list, and an event callback —
        an observer, an audit sweep — is allowed to call ``compact()``
        mid-run. Replacing the list object here would strand that local
        binding on the stale heap, silently dropping every event
        scheduled afterwards (regression-tested by the mid-run
        compaction test in ``tests/simulation/test_simulator.py``).
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)

    @property
    def dead_fraction(self) -> float:
        """Fraction of heap entries that are cancelled tombstones."""
        if not self._heap:
            return 0.0
        return 1.0 - self._live / len(self._heap)

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            raise IndexError("pop from empty EventQueue")


def validate_schedule_time(now: float, time: float) -> None:
    """Raise :class:`ClockError` if ``time`` lies in the simulated past."""
    if time < now:
        raise ClockError(f"cannot schedule at t={time} before now={now}")
