"""Deterministic discrete-event simulation kernel.

Public surface:

- :class:`~repro.simulation.simulator.Simulator` — clock + event loop.
- :class:`~repro.simulation.clock.Clock` / ``Timers`` — the protocol
  boundary platform components are written against (``now`` /
  ``schedule`` / ``at`` / ``after`` / ``cancel``).
- :class:`~repro.simulation.wallclock.AsyncioClock` — the wall-clock
  implementation of that protocol (live serving mode).
- :class:`~repro.simulation.events.Event` / ``EventQueue`` — cancellable
  scheduled callbacks.
- :class:`~repro.simulation.processes.PeriodicProcess` /
  ``OneShotTimer`` — recurring daemons and restartable timers.
- :class:`~repro.simulation.rng.RngRegistry` — named seeded RNG streams.
- :class:`~repro.simulation.lanes.EventLane` — vectorised chunk dispatch
  for homogeneous steady-state timers (the hyperscale hot path).
- :class:`~repro.simulation.pool.ObjectPool` / ``ArrayPool`` — freelists
  for allocation-heavy hot paths.
"""

from repro.simulation.clock import Clock, TimerHandle, Timers, ensure_clock
from repro.simulation.events import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    Event,
    EventQueue,
)
from repro.simulation.lanes import EventLane
from repro.simulation.pool import ArrayPool, ObjectPool
from repro.simulation.processes import OneShotTimer, PeriodicProcess
from repro.simulation.rng import RngRegistry, derive_seed
from repro.simulation.simulator import Simulator
from repro.simulation.wallclock import AsyncioClock, WallTimer

__all__ = [
    "ArrayPool",
    "AsyncioClock",
    "Clock",
    "Event",
    "EventLane",
    "EventQueue",
    "ObjectPool",
    "OneShotTimer",
    "PRIORITY_EARLY",
    "PRIORITY_LATE",
    "PRIORITY_NORMAL",
    "PeriodicProcess",
    "RngRegistry",
    "Simulator",
    "TimerHandle",
    "Timers",
    "WallTimer",
    "derive_seed",
    "ensure_clock",
]
