"""Deterministic discrete-event simulation kernel.

Public surface:

- :class:`~repro.simulation.simulator.Simulator` — clock + event loop.
- :class:`~repro.simulation.events.Event` / ``EventQueue`` — cancellable
  scheduled callbacks.
- :class:`~repro.simulation.processes.PeriodicProcess` /
  ``OneShotTimer`` — recurring daemons and restartable timers.
- :class:`~repro.simulation.rng.RngRegistry` — named seeded RNG streams.
"""

from repro.simulation.events import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    Event,
    EventQueue,
)
from repro.simulation.processes import OneShotTimer, PeriodicProcess
from repro.simulation.rng import RngRegistry, derive_seed
from repro.simulation.simulator import Simulator

__all__ = [
    "Event",
    "EventQueue",
    "OneShotTimer",
    "PeriodicProcess",
    "PRIORITY_EARLY",
    "PRIORITY_LATE",
    "PRIORITY_NORMAL",
    "RngRegistry",
    "Simulator",
    "derive_seed",
]
