"""Named, seeded random-number streams.

Every stochastic component in the simulator (arrival jitter, spot-revocation
draws, BE-model rotation, ...) pulls from its own named stream derived from
a single experiment seed. This keeps runs bit-for-bit reproducible *and*
keeps streams independent: adding draws to one component does not perturb
another component's sequence.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed for stream ``name`` from ``root_seed``.

    Uses SHA-256 over ``"{root_seed}/{name}"`` so the mapping is stable
    across processes and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry rooted under ``name``.

        Useful when a subsystem (e.g. one worker node) needs its own family
        of streams without colliding with siblings.
        """
        return RngRegistry(derive_seed(self.root_seed, name))

    def reset(self) -> None:
        """Drop all cached streams; subsequent calls recreate them fresh."""
        self._streams.clear()
