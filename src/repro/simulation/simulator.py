"""The discrete-event simulator core.

A :class:`Simulator` owns the clock, the event queue, and the RNG registry.
Components schedule callbacks at absolute times; :meth:`Simulator.run`
drains the queue in time order. The design is deliberately single-threaded
and synchronous — determinism is a hard requirement for reproducing the
paper's experiments.
"""

from __future__ import annotations

import heapq
import math
import warnings
from typing import Callable, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.simulation.events import (
    PRIORITY_NORMAL,
    Event,
    EventQueue,
    validate_schedule_time,
)
from repro.simulation.lanes import EventLane, LaneHandler
from repro.simulation.rng import RngRegistry

#: Compact the event heap when this fraction of entries are tombstones.
_COMPACT_THRESHOLD = 0.5
#: ... but only when the heap is at least this large (avoid churn).
_COMPACT_MIN_SIZE = 4096
#: Check the compaction condition every ``_COMPACT_CHECK_EVERY`` events
#: (power of two: the dispatch loop tests ``processed & mask``) instead of
#: on every dispatch — the ratio test itself was showing up in profiles.
_COMPACT_CHECK_EVERY = 1024


class Simulator:
    """Deterministic discrete-event simulator.

    ``Simulator`` is the discrete-event implementation of the
    :class:`~repro.simulation.clock.Clock` protocol (``now`` /
    ``schedule`` / ``at`` / ``after`` / ``cancel``); the wall-clock
    implementation is :class:`~repro.simulation.wallclock.AsyncioClock`.
    Components written against that surface run unchanged on either.

    Parameters
    ----------
    seed:
        Root seed for all named RNG streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self._events_processed = 0
        self._running = False
        self._lanes: list[EventLane] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def heap(self) -> list:
        """Deprecated: the raw event heap is an implementation detail.

        Direct heap pokes bypass tombstone accounting and the Clock
        protocol; schedule through :meth:`schedule`/:meth:`at`/
        :meth:`after` and cancel through :meth:`cancel` instead.
        """
        warnings.warn(
            "Simulator.heap is deprecated; use the Clock protocol methods "
            "(schedule/at/after/cancel) instead of poking the event heap",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.queue._heap

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        The canonical Clock-protocol spelling; :meth:`at` is the
        historical alias. Times in the past raise
        :class:`~repro.errors.ClockError` (a discrete-event clock can
        enforce this; the wall clock clamps instead).
        """
        validate_schedule_time(self._now, time)
        return self.queue.schedule(time, callback, priority=priority, label=label)

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        validate_schedule_time(self._now, time)
        return self.queue.schedule(time, callback, priority=priority, label=label)

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.queue.schedule(
            self._now + delay, callback, priority=priority, label=label
        )

    def cancel(self, event: Event | None) -> None:
        """Cancel ``event`` if it is pending; no-op for ``None``/cancelled."""
        self.queue.cancel_if_pending(event)

    def add_lane(
        self,
        times: Sequence[float] | np.ndarray,
        handler: LaneHandler,
        *,
        label: str = "",
    ) -> EventLane:
        """Register a vectorised event lane (see :mod:`repro.simulation.lanes`).

        ``times`` is a sorted array of firing times, all at or after the
        current clock; ``handler`` receives each dispatched chunk as a
        numpy view. Lane entries count toward :attr:`events_processed`
        and interleave deterministically with heap events (heap wins
        timestamp ties; between lanes, the earlier-registered wins).
        """
        lane = EventLane(times, handler, label=label)
        if lane.times.size:
            validate_schedule_time(self._now, float(lane.times[0]))
        self._lanes.append(lane)
        return lane

    @property
    def lanes(self) -> tuple[EventLane, ...]:
        """Registered event lanes (read-only view)."""
        return tuple(self._lanes)

    def _lanes_pending(self) -> bool:
        return any(lane.remaining for lane in self._lanes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event. Return ``False`` if the queue is empty.

        ``step`` is heap-only: single-stepping would defeat the chunked
        dispatch event lanes exist for, so it refuses to run while a lane
        still has entries (use :meth:`run`).
        """
        if self._lanes_pending():
            raise SimulationError(
                "step() does not interleave event lanes; use run()"
            )
        if not self.queue:
            return False
        event = self.queue.pop()
        if event.time < self._now:
            raise SimulationError(
                f"time went backwards: event at {event.time} < now {self._now}"
            )
        self._now = event.time
        self._events_processed += 1
        event.callback()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time (the
            clock is advanced to ``until``). ``None`` runs to exhaustion.
        max_events:
            Safety valve against runaway simulations.

        The loop is the simulator's hottest path (one iteration per event,
        ~70k/simulated-minute under fig05 load), so the queue's pop/peek
        is inlined here: dead-entry skipping, the ``until`` check, and the
        dispatch all touch the heap directly through local bindings, and
        the tombstone-compaction ratio test runs every
        :data:`_COMPACT_CHECK_EVERY` events instead of every event. The
        event order is exactly what :meth:`step` would produce.

        When event lanes are registered and still hold entries, dispatch
        goes through the lane-aware loop instead (same clock and ordering
        semantics, chunked lane delivery); the default heap-only loop
        below is untouched — and therefore bit-identical — for every run
        that never registers a lane.
        """
        if self._lanes_pending():
            self._run_with_lanes(until, max_events)
            return
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        check_mask = _COMPACT_CHECK_EVERY - 1
        processed = 0
        try:
            while queue._live:
                # Skip tombstones at the head (inlined EventQueue._drop_dead).
                while heap[0][3].cancelled:
                    heappop(heap)
                time = heap[0][0]
                if until is not None and time > until:
                    if until > self._now:
                        self._now = until
                    return
                if time < self._now:
                    raise SimulationError(
                        f"time went backwards: event at {time} < now {self._now}"
                    )
                event = heappop(heap)[3]
                event.fired = True
                queue._live -= 1
                self._now = time
                self._events_processed += 1
                event.callback()
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
                if (
                    not processed & check_mask
                    and len(heap) >= _COMPACT_MIN_SIZE
                    and queue.dead_fraction > _COMPACT_THRESHOLD
                ):
                    # compact() rebuilds in place, so the local `heap`
                    # binding stays valid — here and when a callback
                    # above compacts mid-run (see EventQueue.compact).
                    queue.compact()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def _run_with_lanes(
        self, until: float | None, max_events: int | None
    ) -> None:
        """Drain heap events and lane chunks in merged time order.

        Each iteration dispatches either ONE heap event or ONE lane chunk
        (every lane entry strictly before the next heap event / other
        lane's next entry, and not after ``until``). Heap events win
        timestamp ties, so anything a lane handler schedules on the heap
        interleaves exactly as it would have event-by-event; between
        lanes, the earlier-registered lane wins ties. Lane entries count
        individually toward ``events_processed`` and ``max_events``.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        check_mask = _COMPACT_CHECK_EVERY - 1
        processed = 0
        try:
            while True:
                while heap and heap[0][3].cancelled:
                    heappop(heap)
                heap_time = heap[0][0] if heap else math.inf
                lane_index = -1
                lane_time = math.inf
                for index, candidate in enumerate(self._lanes):
                    t = candidate.peek()
                    if t < lane_time:
                        lane_time = t
                        lane_index = index
                next_time = heap_time if heap_time <= lane_time else lane_time
                if next_time == math.inf:
                    break
                if until is not None and next_time > until:
                    break
                if next_time < self._now:
                    raise SimulationError(
                        f"time went backwards: event at {next_time} < now "
                        f"{self._now}"
                    )
                if heap_time <= lane_time:
                    # Heap event (winning ties against every lane).
                    event = heappop(heap)[3]
                    event.fired = True
                    queue._live -= 1
                    self._now = heap_time
                    self._events_processed += 1
                    event.callback()
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"(runaway simulation?)"
                        )
                    if (
                        not processed & check_mask
                        and len(heap) >= _COMPACT_MIN_SIZE
                        and queue.dead_fraction > _COMPACT_THRESHOLD
                    ):
                        queue.compact()
                    continue
                # Lane chunk: everything in this lane up to (exclusively)
                # the next heap event and the other lanes' next entries —
                # exclusive for earlier-registered lanes, inclusive for
                # later ones, encoding the tie-break — capped at `until`.
                lane = self._lanes[lane_index]
                times = lane.times
                stop = times.size
                if heap_time != math.inf:
                    stop = min(
                        stop, int(np.searchsorted(times, heap_time, side="left"))
                    )
                for index, other in enumerate(self._lanes):
                    if index == lane_index:
                        continue
                    bound = other.peek()
                    if bound == math.inf:
                        continue
                    side = "left" if index < lane_index else "right"
                    stop = min(
                        stop, int(np.searchsorted(times, bound, side=side))
                    )
                if until is not None:
                    stop = min(
                        stop, int(np.searchsorted(times, until, side="right"))
                    )
                chunk = lane.take_until(stop)
                # Non-empty by construction: the lane's head satisfied
                # every bound above, or another branch would have run.
                self._now = float(chunk[-1])
                self._events_processed += chunk.size
                lane.handler(chunk)
                processed += chunk.size
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} "
                        f"(runaway simulation?)"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
