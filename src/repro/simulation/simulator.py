"""The discrete-event simulator core.

A :class:`Simulator` owns the clock, the event queue, and the RNG registry.
Components schedule callbacks at absolute times; :meth:`Simulator.run`
drains the queue in time order. The design is deliberately single-threaded
and synchronous — determinism is a hard requirement for reproducing the
paper's experiments.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError
from repro.simulation.events import (
    PRIORITY_NORMAL,
    Event,
    EventQueue,
    validate_schedule_time,
)
from repro.simulation.rng import RngRegistry

#: Compact the event heap when this fraction of entries are tombstones.
_COMPACT_THRESHOLD = 0.5
#: ... but only when the heap is at least this large (avoid churn).
_COMPACT_MIN_SIZE = 4096
#: Check the compaction condition every ``_COMPACT_CHECK_EVERY`` events
#: (power of two: the dispatch loop tests ``processed & mask``) instead of
#: on every dispatch — the ratio test itself was showing up in profiles.
_COMPACT_CHECK_EVERY = 1024


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all named RNG streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        validate_schedule_time(self._now, time)
        return self.queue.schedule(time, callback, priority=priority, label=label)

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.queue.schedule(
            self._now + delay, callback, priority=priority, label=label
        )

    def cancel(self, event: Event | None) -> None:
        """Cancel ``event`` if it is pending; no-op for ``None``/cancelled."""
        self.queue.cancel_if_pending(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event. Return ``False`` if the queue is empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        if event.time < self._now:
            raise SimulationError(
                f"time went backwards: event at {event.time} < now {self._now}"
            )
        self._now = event.time
        self._events_processed += 1
        event.callback()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly after this time (the
            clock is advanced to ``until``). ``None`` runs to exhaustion.
        max_events:
            Safety valve against runaway simulations.

        The loop is the simulator's hottest path (one iteration per event,
        ~70k/simulated-minute under fig05 load), so the queue's pop/peek
        is inlined here: dead-entry skipping, the ``until`` check, and the
        dispatch all touch the heap directly through local bindings, and
        the tombstone-compaction ratio test runs every
        :data:`_COMPACT_CHECK_EVERY` events instead of every event. The
        event order is exactly what :meth:`step` would produce.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        check_mask = _COMPACT_CHECK_EVERY - 1
        processed = 0
        try:
            while queue._live:
                # Skip tombstones at the head (inlined EventQueue._drop_dead).
                while heap[0][3].cancelled:
                    heappop(heap)
                time = heap[0][0]
                if until is not None and time > until:
                    if until > self._now:
                        self._now = until
                    return
                if time < self._now:
                    raise SimulationError(
                        f"time went backwards: event at {time} < now {self._now}"
                    )
                event = heappop(heap)[3]
                event.fired = True
                queue._live -= 1
                self._now = time
                self._events_processed += 1
                event.callback()
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
                if (
                    not processed & check_mask
                    and len(heap) >= _COMPACT_MIN_SIZE
                    and queue.dead_fraction > _COMPACT_THRESHOLD
                ):
                    queue.compact()
                    heap = queue._heap  # compact() rebuilds the heap list
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
