"""Helpers for recurring simulated activities.

Several PROTEAN components are periodic daemons in the real system — the GPU
Reconfigurator runs every monitoring interval ``W``, the autoscaler's
delayed-termination sweep runs on its own timer, the spot market draws
revocations at fixed intervals. :class:`PeriodicProcess` models exactly
that: a callback re-armed on a fixed period until stopped.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.simulation.events import Event
from repro.simulation.simulator import Simulator


class PeriodicProcess:
    """Invoke ``callback`` every ``period`` seconds of simulated time.

    The first invocation happens at ``start_delay`` (default: one full
    period) after :meth:`start` is called. The callback may call
    :meth:`stop` to cancel further invocations, including from within
    itself.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        label: str = "periodic",
        start_delay: float | None = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._label = label
        self._start_delay = period if start_delay is None else start_delay
        self._event: Event | None = None
        self._running = False
        self.invocations = 0

    @property
    def running(self) -> bool:
        """Whether the process is currently armed."""
        return self._running

    def start(self) -> None:
        """Arm the process. Idempotent-start is a bug, so it raises."""
        if self._running:
            raise SimulationError(f"periodic process {self._label!r} already running")
        self._running = True
        self._event = self._sim.after(
            self._start_delay, self._tick, label=self._label
        )

    def stop(self) -> None:
        """Disarm the process; safe to call when already stopped."""
        if not self._running:
            return
        self._running = False
        self._sim.cancel(self._event)
        self._event = None

    def _tick(self) -> None:
        self._event = None
        self.invocations += 1
        self._callback()
        if self._running:
            self._event = self._sim.after(self.period, self._tick, label=self._label)


class OneShotTimer:
    """A restartable single-fire timer.

    Used for container keep-alive deadlines and spot-eviction countdowns:
    each restart cancels the previous pending fire.
    """

    def __init__(
        self, sim: Simulator, callback: Callable[[], None], *, label: str = "timer"
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._label = label
        self._event: Event | None = None

    @property
    def pending(self) -> bool:
        """Whether a fire is currently scheduled."""
        return self._event is not None and self._event.pending

    def restart(self, delay: float) -> None:
        """(Re)schedule the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.after(delay, self._fire, label=self._label)

    def cancel(self) -> None:
        """Cancel any pending fire."""
        self._sim.cancel(self._event)
        self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
