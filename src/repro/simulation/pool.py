"""Object and array pooling for allocation-heavy hot paths.

Hyperscale runs churn through millions of short-lived objects — per-epoch
scratch arrays in the vectorised engine, per-chunk record buffers in event
lanes. Allocating them fresh each time puts the allocator (and, for numpy
scratch, page-zeroing) on the critical path. These pools recycle instead:

- :class:`ObjectPool` — a freelist of arbitrary objects with an optional
  reset hook, for mutable per-event records;
- :class:`ArrayPool` — freelists of numpy arrays keyed by
  ``(shape, dtype)``, for epoch-sized scratch buffers.

Both are deliberately simple and single-threaded (the simulator core is
single-threaded by design; sharded hyperscale runs hold one pool per
process). Neither clears recycled storage — callers own overwriting it.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

import numpy as np

from repro.errors import ConfigurationError

T = TypeVar("T")


class ObjectPool(Generic[T]):
    """A bounded freelist of reusable objects.

    ``factory`` builds a fresh object when the freelist is empty;
    ``reset`` (optional) is applied to an object on :meth:`release`
    before it re-enters the freelist. At most ``max_size`` objects are
    retained — releases beyond that are dropped for the GC, so a burst
    does not pin memory forever.
    """

    __slots__ = ("_factory", "_reset", "_free", "max_size", "created", "reused")

    def __init__(
        self,
        factory: Callable[[], T],
        reset: Callable[[T], None] | None = None,
        *,
        max_size: int = 1024,
    ) -> None:
        if max_size < 1:
            raise ConfigurationError("max_size must be >= 1")
        self._factory = factory
        self._reset = reset
        self._free: list[T] = []
        self.max_size = max_size
        #: Objects built by ``factory`` (cache misses).
        self.created = 0
        #: Objects served from the freelist (cache hits).
        self.reused = 0

    def acquire(self) -> T:
        """Take an object — recycled when available, fresh otherwise."""
        if self._free:
            self.reused += 1
            return self._free.pop()
        self.created += 1
        return self._factory()

    def release(self, obj: T) -> None:
        """Return ``obj`` to the pool (reset first, dropped when full)."""
        if self._reset is not None:
            self._reset(obj)
        if len(self._free) < self.max_size:
            self._free.append(obj)

    def __len__(self) -> int:
        return len(self._free)


class ArrayPool:
    """Freelists of numpy scratch arrays keyed by ``(shape, dtype)``.

    :meth:`take` returns an array of the requested shape/dtype whose
    contents are **unspecified** (recycled arrays are not zeroed — that
    is the point); :meth:`give` returns it for reuse. The vectorised
    hyperscale engine runs one epoch block per ``take``/``give`` pair,
    so a 24-epoch run touches each buffer shape exactly once per block
    instead of reallocating ~30 MB per epoch.
    """

    __slots__ = ("_free", "max_per_key", "created", "reused")

    def __init__(self, *, max_per_key: int = 8) -> None:
        if max_per_key < 1:
            raise ConfigurationError("max_per_key must be >= 1")
        self._free: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self.max_per_key = max_per_key
        self.created = 0
        self.reused = 0

    def take(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """An array of ``shape``/``dtype`` with unspecified contents."""
        key = (tuple(shape), np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            self.reused += 1
            return free.pop()
        self.created += 1
        return np.empty(shape, dtype=dtype)

    def give(self, array: np.ndarray) -> None:
        """Return ``array`` to its freelist (dropped when the key is full)."""
        key = (array.shape, array.dtype.str)
        free = self._free.setdefault(key, [])
        if len(free) < self.max_per_key:
            free.append(array)
