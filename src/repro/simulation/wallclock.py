"""Wall-clock implementation of the :class:`~repro.simulation.clock.Clock`
protocol on an :mod:`asyncio` event loop.

:class:`AsyncioClock` lets the *same* platform components that run inside
the discrete-event :class:`~repro.simulation.simulator.Simulator` — the
batcher's flush timers, the GPU engine's completion events, container
keep-alive deadlines, autoscaler/reconfigurator daemons — run against
real time instead: every ``schedule``/``after`` becomes an asyncio timer
and ``now`` reads the loop's monotonic clock.

Timeline convention: ``now`` is in **trace seconds** — wall seconds since
:meth:`start`, multiplied by ``speedup``. A replay at ``speedup=50``
therefore drives a 5-second recorded trace in ~0.1 wall seconds while
every deadline, keep-alive, and batch-wait computation in the platform
still sees the trace's own timescale. ``speedup=1`` is true real time.

Differences from the discrete-event clock, by design (documented in
``docs/live_serving.md``):

- Scheduling at a time that has already passed is *clamped* to "as soon
  as possible" rather than raising — wall time cannot be held back while
  a Python callback runs.
- ``priority`` is accepted and ignored: real instants never tie exactly;
  the loop's FIFO ready-queue order applies instead.
- Nothing here is bit-deterministic. Determinism claims for live mode
  are at the *counting* level (admitted/completed/rejected), asserted by
  ``tests/serving/test_replay.py``.
"""

from __future__ import annotations

import asyncio
import time as _time
from typing import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.events import PRIORITY_NORMAL
from repro.simulation.rng import RngRegistry


class WallTimer:
    """Handle for one scheduled wall-clock callback.

    Mirrors the observable surface of
    :class:`~repro.simulation.events.Event` (``time``, ``label``,
    ``cancelled``, ``fired``, ``pending``) so component code holding
    handles works identically on either clock.
    """

    __slots__ = ("time", "label", "cancelled", "fired", "_handle")

    def __init__(self, time: float, label: str) -> None:
        self.time = time
        self.label = label
        self.cancelled = False
        self.fired = False
        self._handle: asyncio.TimerHandle | None = None

    @property
    def pending(self) -> bool:
        """True while scheduled and neither fired nor cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"WallTimer(t={self.time:.6f}, {self.label!r}, {state})"


class _WallView:
    """Read-only *unscaled* wall view of an :class:`AsyncioClock`.

    ``now`` is wall seconds since the clock started (speedup **not**
    applied). Threading this view into a tracer makes live-mode spans
    carry wall-clock durations — what an operator actually measured —
    while the platform itself keeps computing in trace seconds. The
    companion ``unix_origin`` anchors those relative stamps to absolute
    time for export.
    """

    __slots__ = ("_clock",)

    def __init__(self, clock: "AsyncioClock") -> None:
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock.wall_now

    @property
    def unix_origin(self) -> float:
        return self._clock.unix_origin


class AsyncioClock:
    """The wall-clock :class:`~repro.simulation.clock.Clock`.

    Parameters
    ----------
    seed:
        Root seed for the named RNG streams (same registry the simulator
        exposes, so components drawing randomness work unchanged).
    speedup:
        Trace seconds per wall second. ``50`` replays a recorded trace
        fifty times faster than real time.
    """

    def __init__(self, seed: int = 0, *, speedup: float = 1.0) -> None:
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be positive, got {speedup}")
        self.speedup = float(speedup)
        self.rng = RngRegistry(seed)
        self.timers_scheduled = 0
        self.timers_fired = 0
        self.timers_cancelled = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._origin_monotonic = 0.0
        self._unix_origin = 0.0
        #: Live (pending) timers, for drain/teardown introspection.
        self._pending: set[WallTimer] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncioClock":
        """Bind to the running event loop and zero the timeline.

        Must be called from inside a running loop (the serving runtime
        does this first thing); calling twice raises, mirroring
        ``Simulator.run``'s non-reentrancy guard.
        """
        if self._loop is not None:
            raise SimulationError("AsyncioClock.start called twice")
        self._loop = asyncio.get_running_loop()
        self._origin_monotonic = self._loop.time()
        self._unix_origin = _time.time()
        return self

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has bound the clock to a loop."""
        return self._loop is not None

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise SimulationError(
                "AsyncioClock is not started; call start() from inside a "
                "running asyncio event loop first"
            )
        return self._loop

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Trace seconds since :meth:`start` (wall seconds × speedup)."""
        if self._loop is None:
            return 0.0
        return (self._loop.time() - self._origin_monotonic) * self.speedup

    @property
    def wall_now(self) -> float:
        """Wall seconds since :meth:`start` (speedup *not* applied)."""
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._origin_monotonic

    @property
    def unix_origin(self) -> float:
        """Unix timestamp (``time.time``) captured at :meth:`start`."""
        return self._unix_origin

    @property
    def wall(self) -> _WallView:
        """Unscaled wall-clock view (for tracers; see :class:`_WallView`)."""
        return _WallView(self)

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> WallTimer:
        """Run ``callback`` at absolute trace time ``time``.

        Times at or before ``now`` are clamped to "as soon as possible".
        ``priority`` is ignored (see module docstring).
        """
        del priority  # wall instants never tie; loop FIFO order applies
        loop = self._require_loop()
        timer = WallTimer(time, label)
        delay_wall = max(0.0, (time - self.now) / self.speedup)

        def fire() -> None:
            if timer.cancelled:  # pragma: no cover - cancel() detaches first
                return
            timer.fired = True
            timer._handle = None
            self._pending.discard(timer)
            self.timers_fired += 1
            callback()

        timer._handle = loop.call_later(delay_wall, fire)
        self._pending.add(timer)
        self.timers_scheduled += 1
        return timer

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> WallTimer:
        """Alias of :meth:`schedule` (the historical simulator spelling)."""
        return self.schedule(time, callback, priority=priority, label=label)

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> WallTimer:
        """Run ``callback`` ``delay`` trace seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(
            self.now + delay, callback, priority=priority, label=label
        )

    def cancel(self, timer: WallTimer | None) -> None:
        """Cancel ``timer`` if pending; no-op for ``None``/fired/cancelled.

        Matches ``Simulator.cancel`` semantics exactly — component code
        cancels handles it may have let fire already.
        """
        if timer is None or timer.cancelled or timer.fired:
            return
        timer.cancelled = True
        if timer._handle is not None:
            timer._handle.cancel()
            timer._handle = None
        self._pending.discard(timer)
        self.timers_cancelled += 1

    # ------------------------------------------------------------------
    # Drain / introspection
    # ------------------------------------------------------------------
    @property
    def pending_timers(self) -> int:
        """Number of scheduled-but-unfired (and uncancelled) timers."""
        return len(self._pending)

    async def sleep(self, delay: float) -> None:
        """Coroutine: wait ``delay`` *trace* seconds (wall = delay/speedup)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        await asyncio.sleep(delay / self.speedup)

    async def wait_for(
        self,
        condition: Callable[[], bool],
        *,
        timeout_wall: float,
        poll_wall: float = 0.005,
    ) -> bool:
        """Poll ``condition`` until true or ``timeout_wall`` wall seconds.

        Returns whether the condition became true. The poll interval is
        in wall seconds so drains behave identically at every speedup.
        """
        loop = self._require_loop()
        deadline = loop.time() + timeout_wall
        while not condition():
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(poll_wall)
        return True

    def shutdown(self) -> int:
        """Cancel every still-pending timer (teardown). Returns the count."""
        pending = list(self._pending)
        for timer in pending:
            self.cancel(timer)
        return len(pending)
