"""Vectorised event lanes: array-backed timers for homogeneous event storms.

The heap-based :class:`~repro.simulation.events.EventQueue` pays one Python
callback dispatch per event (~50–60k events/sec). That is the right shape
for *heterogeneous* events — every batch completion reschedules differently
— but hyperscale workloads are dominated by **homogeneous steady-state
timers**: per-tick arrival injections, autoscaler sweeps, telemetry
samples, millions of identical firings whose times are known up front.

An :class:`EventLane` stores those firing times as one sorted numpy array
and delivers them to a single handler in **chunks**: all lane entries that
fire before the next heap event (or before another lane's next entry) are
dispatched as one ``handler(times_chunk)`` call. The simulator's clock and
``events_processed`` counter advance as if each entry had been a heap
event, but the per-event Python frame is gone — throughput becomes an
array-slicing problem (tens of millions of entries/sec; see
``benchmarks/bench_hyperscale.py``).

Ordering contract (what keeps lane runs deterministic):

- lane entries never overtake heap events: at equal timestamps the heap
  event fires first;
- between lanes, ties go to the earlier-registered lane;
- a chunk never spans a heap event or another lane's next entry, so any
  event a handler schedules is observed by later entries exactly as it
  would have been event-by-event.

Handler contract: the clock is already at the chunk's **last** timestamp
when the handler runs (the chunk was dispatched as one aggregate), so a
handler may only schedule heap events at or after that time. Lanes are for
steady-state aggregation; anything that needs to react mid-chunk belongs
on the heap.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import SimulationError

#: Handler signature: receives the chunk's firing times (a read-only view
#: into the lane's array, sorted ascending, length >= 1).
LaneHandler = Callable[[np.ndarray], None]


class EventLane:
    """A sorted array of firing times serviced by one chunk handler.

    Built through :meth:`repro.simulation.simulator.Simulator.add_lane`;
    the constructor only validates and freezes the times array.
    """

    __slots__ = ("times", "handler", "label", "_cursor")

    def __init__(
        self,
        times: Sequence[float] | np.ndarray,
        handler: LaneHandler,
        *,
        label: str = "",
    ) -> None:
        array = np.ascontiguousarray(times, dtype=float)
        if array.ndim != 1:
            raise SimulationError(
                f"lane times must be 1-D, got shape {array.shape}"
            )
        if array.size and not np.all(np.isfinite(array)):
            raise SimulationError("lane times must be finite")
        if array.size and np.any(np.diff(array) < 0):
            raise SimulationError("lane times must be sorted non-decreasing")
        if array.size and array[0] < 0:
            raise SimulationError("lane times must be non-negative")
        array.flags.writeable = False
        self.times = array
        self.handler = handler
        self.label = label
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Entries not yet fired."""
        return self.times.size - self._cursor

    def peek(self) -> float:
        """Next firing time; ``inf`` when the lane is exhausted."""
        if self._cursor >= self.times.size:
            return math.inf
        return float(self.times[self._cursor])

    def take_until(self, stop_index: int) -> np.ndarray:
        """Advance the cursor to ``stop_index`` and return the chunk view.

        Internal — only the simulator's lane-aware run loop calls this,
        with a ``stop_index`` it computed from the ordering contract.
        """
        chunk = self.times[self._cursor : stop_index]
        self._cursor = stop_index
        return chunk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventLane({self.label!r}, {self.remaining}/{self.times.size} "
            f"remaining)"
        )
