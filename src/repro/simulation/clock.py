"""The clock boundary: what platform components may ask of "time".

Every scheduler, batcher, dispatcher, autoscaler, and reconfigurator in
this repository was written against the discrete-event
:class:`~repro.simulation.simulator.Simulator`. The protocols here name
the *exact* surface those components actually use, so the same logic can
run unchanged against either time source:

- :class:`Timers` — schedule/cancel callbacks at absolute times or
  after relative delays;
- :class:`Clock` — a readable ``now`` plus :class:`Timers`.

Two implementations ship with the repository:

- :class:`~repro.simulation.simulator.Simulator` — virtual time, events
  dispatched synchronously in deterministic order (the default path for
  every experiment; bit-identical results are pinned by tests);
- :class:`~repro.simulation.wallclock.AsyncioClock` — wall time (with an
  optional speedup factor) on an :mod:`asyncio` event loop, used by the
  live serving mode (:mod:`repro.serving`).

Contract notes (what a conforming clock must guarantee):

- ``now`` is monotonically non-decreasing within one run.
- ``schedule``/``at`` accept absolute times; a discrete-event clock may
  reject times in the past (:class:`~repro.errors.ClockError`) while a
  wall clock clamps them to "as soon as possible" — wall time cannot be
  held back while a callback runs.
- ``priority`` orders same-timestamp callbacks on a discrete-event
  clock; a wall clock cannot distinguish simultaneous instants and may
  ignore it (FIFO within the loop's ready queue applies instead).
- ``cancel`` is safe on ``None`` and on handles that already fired —
  it only ever cancels genuinely pending work.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.simulation.events import PRIORITY_NORMAL

#: What a clock hands back from ``schedule``/``at``/``after``. Opaque to
#: callers except for the ``pending`` query; pass it to ``cancel``.
TimerHandle = Any


@runtime_checkable
class Timers(Protocol):
    """Scheduling half of the clock boundary."""

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> TimerHandle:
        """Run ``callback`` at absolute ``time``; return a cancellable handle."""
        ...  # pragma: no cover - protocol

    def at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> TimerHandle:
        """Alias of :meth:`schedule` (the historical spelling)."""
        ...  # pragma: no cover - protocol

    def after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> TimerHandle:
        """Run ``callback`` ``delay`` seconds from now."""
        ...  # pragma: no cover - protocol

    def cancel(self, handle: TimerHandle | None) -> None:
        """Cancel ``handle`` if still pending; no-op for ``None``/fired."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class Clock(Timers, Protocol):
    """A readable current time plus :class:`Timers`.

    ``now`` is in *seconds* on the clock's own timeline: simulated
    seconds for the discrete-event implementation, trace seconds for the
    wall-clock implementation (wall seconds × speedup since start).
    """

    @property
    def now(self) -> float:
        """Current time in seconds on this clock's timeline."""
        ...  # pragma: no cover - protocol


def ensure_clock(obj: object) -> Clock:
    """Validate that ``obj`` structurally satisfies :class:`Clock`.

    Raises :class:`~repro.errors.ConfigurationError` otherwise — used by
    entry points that accept a pluggable clock so misconfiguration fails
    fast with a typed error instead of an attribute error mid-run.
    """
    from repro.errors import ConfigurationError

    if isinstance(obj, Clock):
        return obj
    raise ConfigurationError(
        f"{type(obj).__name__} does not satisfy the Clock protocol "
        "(needs now/schedule/at/after/cancel; see repro.simulation.clock)"
    )
