"""Run-scoped identity: make every run's id spaces start from zero.

Several components number their instances from process-global counters
(nodes, VMs, GPUs, containers, requests, batches, GPU jobs, spans).
Metrics never depend on the absolute values, but the ids *do* surface in
span attributes and extras ("node16", ``request_id``), which made a run's
trace depend on how many runs the process had executed before it — and,
under process fan-out, on which worker the run landed.

:func:`reset_run_ids` restarts every counter. The experiment runner calls
it at the start of each run, so a run's full output (summary, records,
span log) is a pure function of its :class:`ExperimentConfig` — the
property the parallel/serial equivalence suite pins down to the digest.

Only the runner should call this: resetting mid-run would hand out
duplicate ids to live objects.
"""

from __future__ import annotations


def reset_run_ids() -> None:
    """Restart every process-global instance counter."""
    from repro.cluster import node, vm
    from repro.gpu import device, engine
    from repro.observability import span
    from repro.serverless import container, request

    node.reset_ids()
    vm.reset_ids()
    device.reset_ids()
    engine.reset_ids()
    span.reset_ids()
    container.reset_ids()
    request.reset_ids()
